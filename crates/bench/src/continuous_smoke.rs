//! CI smoke pass for the continuous standing-query engine.
//!
//! Three legs, run via `experiments continuous-smoke`:
//!
//! 1. **Registry exploration** — every case of
//!    [`ifi_simcheck::continuous_cases`] runs its full budget: the clean
//!    case's `window-consistency` oracle must hold across ≥ 50 distinct
//!    schedules and the planted retirement-dropping negative must be
//!    caught, shrunk, replayed, and serialized.
//! 2. **Long haul** — a 30-peer run over 24 epoch fences under 10 % drop
//!    and 5 % duplication (reliability envelope on): every fence must
//!    certify and every certified answer must equal the from-scratch
//!    windowed aggregation, for both registered queries.
//! 3. **Sharing ratio** — K = 8 standing queries against K = 1 on the
//!    same workload: the shared [`MsgClass::DELTA`] stream must be
//!    byte-identical (K-independent), so the eight-query run spends well
//!    under half of 8× the single-query delta bytes — the "≪ K×" claim
//!    as a checked number.
//!
//! [`MsgClass::DELTA`]: ifi_sim::MsgClass::DELTA

use std::path::Path;

use ifi_hierarchy::Hierarchy;
use ifi_sim::{Des, FaultPlan, MsgClass, PeerId, RelConfig, SimConfig, World};
use ifi_simcheck::continuous_cases;
use ifi_workload::{ItemId, SystemData, WorkloadParams};
use netfilter::continuous::{
    schedule_from_data, window_totals_from_scratch, ContinuousConfig, ContinuousProtocol,
    QueryRegistry, StandingQuery,
};

use crate::simcheck_smoke::{bug_checks, clean_checks, SmokeRun};
use crate::ShapeCheck;

/// Peers in the long-haul and sharing workloads.
const PEERS: usize = 30;
/// Epoch fences the long-haul run certifies (the ISSUE's ≥ 20 bar).
const EPOCHS: usize = 24;
/// Window size in buckets.
const WINDOW: usize = 4;
/// Thresholds of the two long-haul queries.
const THRESHOLDS: [u64; 2] = [40, 80];
/// Queries in the many-tenant sharing run.
const K: usize = 8;

fn smoke_workload(seed: u64) -> Vec<Vec<Vec<(ItemId, u64)>>> {
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: PEERS,
            items: 400,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    schedule_from_data(&data, EPOCHS)
}

fn subscriber() -> PeerId {
    PeerId::new(PEERS - 1)
}

fn run_world(
    schedules: &[Vec<Vec<(ItemId, u64)>>],
    registry: &QueryRegistry,
    sim: SimConfig,
    rel: Option<RelConfig>,
) -> World<Des<ContinuousProtocol>> {
    let h = Hierarchy::balanced(PEERS, 3);
    let cfg = ContinuousConfig::new(WINDOW, EPOCHS);
    let mut w = match rel {
        None => ContinuousProtocol::build_world(&cfg, &h, registry, schedules, sim),
        Some(rc) => {
            ContinuousProtocol::build_world_reliable(&cfg, &h, registry, schedules, sim, rc)
        }
    };
    w.start();
    w.run_to_quiescence();
    w
}

/// The long-haul leg: every fence certifies under loss and every
/// certified answer equals the from-scratch window.
pub fn long_haul_checks(seed: u64) -> Vec<ShapeCheck> {
    let schedules = smoke_workload(seed);
    let mut registry = QueryRegistry::new();
    for (i, &t) in THRESHOLDS.iter().enumerate() {
        registry.register(StandingQuery {
            id: i as u32,
            threshold: t,
            subscriber: subscriber(),
        });
    }
    let sim = SimConfig::default()
        .with_seed(seed)
        .with_faults(FaultPlan::none().with_drop(0.10).with_duplication(0.05));
    let root = Hierarchy::balanced(PEERS, 3).root();
    let w = run_world(&schedules, &registry, sim, Some(RelConfig::default()));
    let history = w.peer(root).history().to_vec();

    let mut checks = Vec::new();
    checks.push(ShapeCheck::new(
        format!("all {EPOCHS} epoch fences certify under 10% drop + 5% duplication"),
        history.len() == EPOCHS,
        format!("{} of {EPOCHS} certified", history.len()),
    ));
    let mut mismatches = 0usize;
    for ans in &history {
        let scratch = window_totals_from_scratch(&schedules, ans.epoch, WINDOW);
        for (qi, &t) in THRESHOLDS.iter().enumerate() {
            let mut want: Vec<(ItemId, u64)> = scratch
                .iter()
                .filter(|&(_, v)| *v >= t)
                .map(|(&k, &v)| (k, v))
                .collect();
            want.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            if ans.answers[qi].items != want {
                mismatches += 1;
            }
        }
    }
    checks.push(ShapeCheck::new(
        "every certified answer equals the from-scratch windowed aggregation",
        !history.is_empty() && mismatches == 0,
        format!(
            "{} epoch × query answers compared, {mismatches} diverged",
            history.len() * THRESHOLDS.len()
        ),
    ));
    checks
}

/// The sharing leg: K standing queries over one delta stream.
pub fn sharing_checks(seed: u64) -> Vec<ShapeCheck> {
    let schedules = smoke_workload(seed);
    let bytes = |registry: &QueryRegistry| {
        let w = run_world(
            &schedules,
            registry,
            SimConfig::default().with_seed(seed),
            None,
        );
        (
            w.metrics().class_bytes(MsgClass::DELTA),
            w.metrics().class_bytes(MsgClass::STANDING),
        )
    };
    let single = QueryRegistry::single(THRESHOLDS[0], subscriber());
    let mut many = QueryRegistry::new();
    for i in 0..K {
        many.register(StandingQuery {
            id: i as u32,
            threshold: THRESHOLDS[0] + 10 * i as u64,
            subscriber: subscriber(),
        });
    }
    let (delta_1, _standing_1) = bytes(&single);
    let (delta_k, standing_k) = bytes(&many);

    let mut checks = Vec::new();
    checks.push(ShapeCheck::new(
        "the shared delta stream is K-independent (K=8 bytes == K=1 bytes)",
        delta_1 > 0 && delta_k == delta_1,
        format!("K=1: {delta_1} B, K={K}: {delta_k} B"),
    ));
    let budget = K as u64 * delta_1 / 2;
    checks.push(ShapeCheck::new(
        format!("K={K} queries spend < 0.5 x ({K} x single-query bytes) in the shared class"),
        delta_k < budget,
        format!(
            "shared {delta_k} B vs budget {budget} B (ratio {:.3} of {K}x)",
            delta_k as f64 / (K as u64 * delta_1) as f64
        ),
    ));
    checks.push(ShapeCheck::new(
        "per-query answer-split traffic is metered separately",
        standing_k > 0,
        format!("K={K} standing-class bytes: {standing_k}"),
    ));
    checks
}

/// Explores the continuous simcheck registry and runs the long-haul and
/// sharing legs; negative-case artifacts go to `out_dir`.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<SmokeRun> {
    let mut runs: Vec<SmokeRun> = continuous_cases(seed)
        .iter()
        .map(|case| {
            let report = case.explore();
            let checks = if case.expect_violation.is_none() {
                clean_checks(case, &report)
            } else {
                bug_checks(case, &report, out_dir)
            };
            SmokeRun {
                name: case.name,
                checks,
            }
        })
        .collect();
    runs.push(SmokeRun {
        name: "continuous-long-haul",
        checks: long_haul_checks(seed),
    });
    runs.push(SmokeRun {
        name: "continuous-sharing",
        checks: sharing_checks(seed),
    });
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_haul_checks_hold_at_the_default_seed() {
        for c in long_haul_checks(20080617) {
            assert!(c.holds, "{} ({})", c.claim, c.detail);
        }
    }

    #[test]
    fn sharing_checks_hold_at_the_default_seed() {
        for c in sharing_checks(20080617) {
            assert!(c.holds, "{} ({})", c.claim, c.detail);
        }
    }

    /// The full CI smoke at the default seed: the clean case's oracle
    /// holds across its budget, the planted negative round-trips, and
    /// both measurement legs pass.
    #[test]
    fn continuous_smoke_passes_at_the_default_seed() {
        let dir = std::env::temp_dir().join("ifi-continuous-smoke-test");
        let runs = run_smoke(20080617, &dir);
        assert_eq!(runs.len(), 4);
        for run in &runs {
            for c in &run.checks {
                assert!(c.holds, "{}: {} ({})", run.name, c.claim, c.detail);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
