//! Shared experiment plumbing.

use ifi_hierarchy::Hierarchy;
use ifi_workload::{SystemData, WorkloadParams};
use netfilter::{MetricsReport, NetFilter, NetFilterConfig, Threshold, WireSizes};

/// Experiment scale: the paper's full setting, a fast smoke setting, or an
/// explicit point (used by the scale lane to push `N` past the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table III: `N = 1000`, `n = 10^5` (and `10^6` where the paper uses
    /// it).
    Paper,
    /// Scaled down ~10× for smoke runs and CI.
    Quick,
    /// An explicit `(N, n_small, n_large)` point.
    Custom {
        /// `N` — number of peers.
        peers: usize,
        /// The base `n` (Figures 5, 6, 7a).
        items_small: u64,
        /// The large `n` (Figures 7b, 8).
        items_large: u64,
    },
}

impl Scale {
    /// `N` — number of peers.
    pub fn peers(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 200,
            Scale::Custom { peers, .. } => peers,
        }
    }

    /// The base `n` (Figures 5, 6, 7a).
    pub fn items_small(self) -> u64 {
        match self {
            Scale::Paper => 100_000,
            Scale::Quick => 20_000,
            Scale::Custom { items_small, .. } => items_small,
        }
    }

    /// The large `n` (Figures 7b, 8).
    pub fn items_large(self) -> u64 {
        match self {
            Scale::Paper => 1_000_000,
            Scale::Quick => 50_000,
            Scale::Custom { items_large, .. } => items_large,
        }
    }

    /// Generates the Table III workload for this scale, using the paper's
    /// replica-split placement (see `SystemData::generate_paper`).
    pub fn workload(self, items: u64, theta: f64, seed: u64) -> SystemData {
        SystemData::generate_paper(
            &WorkloadParams {
                peers: self.peers(),
                items,
                instances_per_item: 10,
                theta,
            },
            seed,
        )
    }

    /// The paper's hierarchy: `b = 3` downstream neighbors per peer.
    pub fn hierarchy(self) -> Hierarchy {
        Hierarchy::balanced(self.peers(), 3)
    }
}

/// Flat per-run summary used by the figure tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Average candidate pairs propagated per peer (Fig. 5a/6a, left line).
    pub candidates_per_peer: f64,
    /// Total heavy item groups across filters (Fig. 5a/6a, right line).
    pub heavy_groups: usize,
    /// Heavy items `r` (= result size).
    pub heavy_items: usize,
    /// False positives in the candidate set.
    pub false_positives: usize,
    /// Average bytes per peer: total and per phase (Fig. 5b/6b lines).
    pub total: f64,
    /// Candidate-filtering component.
    pub filtering: f64,
    /// Candidate-dissemination component.
    pub dissemination: f64,
    /// Candidate-aggregation component.
    pub aggregation: f64,
}

/// Runs netFilter once and flattens the result for table printing.
///
/// Every figure run goes through the instrumented engine path, so the
/// sink's [`MetricsReport`] is reconciled byte-for-byte against the
/// engine's `CostBreakdown` on *every* sweep point of *every* figure (the
/// reconciliation assert lives in `NetFilter::run_instrumented`).
pub fn summarize_netfilter(
    hierarchy: &Hierarchy,
    data: &SystemData,
    g: u32,
    f: u32,
    phi: f64,
) -> RunSummary {
    instrumented_summary(hierarchy, data, g, f, phi).0
}

/// [`summarize_netfilter`] that also returns the run's [`MetricsReport`]
/// (richer per-phase/per-peer/wall-clock view of the same bytes).
pub fn instrumented_summary(
    hierarchy: &Hierarchy,
    data: &SystemData,
    g: u32,
    f: u32,
    phi: f64,
) -> (RunSummary, MetricsReport) {
    let config = NetFilterConfig::builder()
        .filter_size(g)
        .filters(f)
        .threshold(Threshold::Ratio(phi))
        .build();
    let (run, report) = NetFilter::new(config).run_instrumented(hierarchy, data);
    let cost = run.cost();
    let counts = run.counts();
    let summary = RunSummary {
        candidates_per_peer: counts
            .candidates_per_peer(&WireSizes::default(), hierarchy.universe()),
        heavy_groups: counts.heavy_groups_total,
        heavy_items: counts.heavy_items,
        false_positives: counts.false_positives(),
        total: cost.avg_total(),
        filtering: cost.avg_filtering(),
        dissemination: cost.avg_dissemination(),
        aggregation: cost.avg_aggregation(),
    };
    (summary, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller() {
        assert!(Scale::Quick.peers() < Scale::Paper.peers());
        assert!(Scale::Quick.items_small() < Scale::Paper.items_small());
        assert!(Scale::Quick.items_large() < Scale::Paper.items_large());
    }

    #[test]
    fn custom_scale_reports_its_explicit_point() {
        let s = Scale::Custom {
            peers: 10_000,
            items_small: 100_000,
            items_large: 1_000_000,
        };
        assert_eq!(s.peers(), 10_000);
        assert_eq!(s.items_small(), 100_000);
        assert_eq!(s.items_large(), 1_000_000);
        assert_eq!(s.hierarchy().universe(), 10_000);
    }

    #[test]
    fn summary_components_sum_to_total() {
        let scale = Scale::Quick;
        let data = scale.workload(2_000, 1.0, 1);
        let h = scale.hierarchy();
        let s = summarize_netfilter(&h, &data, 50, 3, 0.01);
        assert!((s.filtering + s.dissemination + s.aggregation - s.total).abs() < 1e-9);
        assert!(s.candidates_per_peer >= 0.0);
        assert!(s.heavy_items + s.false_positives >= s.heavy_items);
    }

    #[test]
    fn instrumented_summary_report_matches_the_flat_view() {
        let scale = Scale::Quick;
        let data = scale.workload(2_000, 1.0, 2);
        let h = scale.hierarchy();
        let (s, report) = instrumented_summary(&h, &data, 50, 3, 0.01);
        assert!((report.avg_bytes_per_peer() - s.total).abs() < 1e-9);
        let n = h.universe() as f64;
        assert!((report.phase_bytes("filtering") as f64 / n - s.filtering).abs() < 1e-9);
        assert!((report.phase_bytes("dissemination") as f64 / n - s.dissemination).abs() < 1e-9);
        assert!((report.phase_bytes("aggregation") as f64 / n - s.aggregation).abs() < 1e-9);
    }
}
