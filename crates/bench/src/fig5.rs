//! Figure 5 — effect of the filter size `g` (§V-A).
//!
//! Sweep `g ∈ {25 … 500}` at `f = 3`, default workload (`n = 10^5`,
//! `θ = 1`, `φ = 0.01`). Panel (a): candidates propagated per peer and
//! heavy item groups; panel (b): cost breakdown. The paper observes the
//! total cost is minimized around `g = 100` (Eq. 3 predicts `c + 80`).

use crate::runner::{summarize_netfilter, RunSummary, Scale};
use crate::table::{f1, Table};
use crate::ShapeCheck;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// The filter size `g`.
    pub g: u32,
    /// The measured run summary.
    pub summary: RunSummary,
}

/// The regenerated Figure 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Sweep points in ascending `g`.
    pub rows: Vec<Fig5Row>,
    /// The fixed number of filters (3).
    pub f: u32,
}

/// The paper's sweep values for `g`.
pub const G_SWEEP: [u32; 9] = [25, 50, 75, 100, 150, 200, 300, 400, 500];

/// Runs the Figure 5 sweep.
pub fn run(scale: Scale, seed: u64) -> Fig5 {
    let data = scale.workload(scale.items_small(), 1.0, seed);
    let h = scale.hierarchy();
    let f = 3;
    let rows = crate::par::par_map(G_SWEEP.to_vec(), |g| Fig5Row {
        g,
        summary: summarize_netfilter(&h, &data, g, f, 0.01),
    });
    Fig5 { rows, f }
}

impl Fig5 {
    /// Prints both panels as one table.
    pub fn print(&self) {
        println!(
            "\n== Figure 5: effect of filter size (f = {}, phi = 0.01) ==",
            self.f
        );
        let mut t = Table::new(&[
            "g",
            "cand/peer",
            "heavy-groups",
            "total B/peer",
            "filtering",
            "dissemination",
            "aggregation",
        ]);
        for r in &self.rows {
            let s = r.summary;
            t.row(vec![
                r.g.to_string(),
                f1(s.candidates_per_peer),
                s.heavy_groups.to_string(),
                f1(s.total),
                f1(s.filtering),
                f1(s.dissemination),
                f1(s.aggregation),
            ]);
        }
        t.print();
    }

    /// The plottable series (Figure 5a counts + 5b cost breakdown).
    pub fn to_data(&self) -> crate::output::DataFile {
        let mut d = crate::output::DataFile::new(
            "fig5",
            &[
                "g",
                "candidates_per_peer",
                "heavy_groups",
                "total",
                "filtering",
                "dissemination",
                "aggregation",
            ],
        );
        for r in &self.rows {
            let s = r.summary;
            d.row(vec![
                r.g as f64,
                s.candidates_per_peer,
                s.heavy_groups as f64,
                s.total,
                s.filtering,
                s.dissemination,
                s.aggregation,
            ]);
        }
        d
    }

    /// The qualitative claims of §V-A.
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let totals: Vec<f64> = self.rows.iter().map(|r| r.summary.total).collect();
        let cands: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.summary.candidates_per_peer)
            .collect();
        let min_idx = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
            .map(|(i, _)| i)
            .expect("nonempty sweep");

        let interior = min_idx > 0 && min_idx + 1 < totals.len();
        let g_at_min = self.rows[min_idx].g;

        let candidates_shrink =
            cands.first().copied().unwrap_or(0.0) > cands.last().copied().unwrap_or(0.0);

        // Filtering cost grows linearly in g: check the slope ratio of the
        // last and first points matches g's ratio.
        let filt_first = self
            .rows
            .first()
            .map(|r| r.summary.filtering)
            .unwrap_or(0.0);
        let filt_last = self.rows.last().map(|r| r.summary.filtering).unwrap_or(0.0);
        let g_first = self.rows.first().map(|r| r.g).unwrap_or(1) as f64;
        let g_last = self.rows.last().map(|r| r.g).unwrap_or(1) as f64;
        let linear = (filt_last / filt_first - g_last / g_first).abs() < 0.05;

        vec![
            ShapeCheck::new(
                "total cost has an interior minimum in g (paper: g ≈ 100)",
                interior,
                format!("min at g = {g_at_min}"),
            ),
            ShapeCheck::new(
                "candidates per peer decrease as g grows",
                candidates_shrink,
                format!("{:.1} → {:.1}", cands[0], cands[cands.len() - 1]),
            ),
            ShapeCheck::new(
                "candidate-filtering cost grows linearly with g",
                linear,
                format!("{filt_first:.0} B @ g={g_first} vs {filt_last:.0} B @ g={g_last}"),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_matches_paper_shapes() {
        let fig = run(Scale::Quick, 42);
        assert_eq!(fig.rows.len(), G_SWEEP.len());
        for c in fig.checks() {
            assert!(c.holds, "failed: {} ({})", c.claim, c.detail);
        }
    }

    #[test]
    fn tiny_g_prunes_poorly() {
        // §V-A: at g ≤ 50 "the filtering performance is poor".
        let fig = run(Scale::Quick, 43);
        let first = fig.rows.first().unwrap().summary;
        let best = fig
            .rows
            .iter()
            .map(|r| r.summary.candidates_per_peer)
            .fold(f64::INFINITY, f64::min);
        assert!(first.candidates_per_peer > 3.0 * best);
    }
}
