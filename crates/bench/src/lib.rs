//! # ifi-bench — experiment harness for the netFilter paper
//!
//! Regenerates every figure of the evaluation (§V):
//!
//! | experiment | paper | sweep |
//! |------------|-------|-------|
//! | [`fig5`]   | Fig. 5(a)+(b) | filter size `g`, `f = 3` |
//! | [`fig6`]   | Fig. 6(a)+(b) | number of filters `f`, `g = 100` |
//! | [`fig7`]   | Fig. 7(a)+(b) | data skewness `θ`, netFilter vs naive, `n ∈ {10^5, 10^6}` |
//! | [`fig8`]   | Fig. 8 | threshold ratio `φ` × skewness, `n = 10^6` |
//! | [`ablation`] | §IV | Eq. 3/6 optima vs measured; gossip vs hierarchy |
//!
//! Run with `cargo run -p ifi-bench --release --bin experiments -- all`
//! (add `--quick` for a scaled-down smoke pass). Every experiment prints
//! the paper's table/series plus a *shape check* verifying the qualitative
//! claims (interior cost minimum, netFilter ≪ naive, monotone trends).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod approx_smoke;
pub mod approx_sweep;
pub mod baseline;
pub mod chaos_smoke;
pub mod churn;
pub mod continuous_smoke;
pub mod continuous_sweep;
pub mod depth;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod loss;
pub mod output;
pub mod par;
pub mod perfbench;
mod runner;
pub mod simcheck_smoke;
pub mod table;
pub mod transport_smoke;

pub use runner::{instrumented_summary, summarize_netfilter, RunSummary, Scale};

/// Outcome of one qualitative shape check.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What the paper claims.
    pub claim: String,
    /// Whether the regenerated data exhibits it.
    pub holds: bool,
    /// Supporting numbers.
    pub detail: String,
}

impl ShapeCheck {
    /// Creates a check result.
    pub fn new(claim: impl Into<String>, holds: bool, detail: impl Into<String>) -> Self {
        ShapeCheck {
            claim: claim.into(),
            holds,
            detail: detail.into(),
        }
    }

    /// Prints the check as a `[PASS]`/`[FAIL]` line.
    pub fn print(&self) {
        println!(
            "  [{}] {} ({})",
            if self.holds { "PASS" } else { "FAIL" },
            self.claim,
            self.detail
        );
    }
}

/// Prints a labelled list of checks and returns whether all passed.
pub fn report_checks(title: &str, checks: &[ShapeCheck]) -> bool {
    println!("shape checks — {title}:");
    for c in checks {
        c.print();
    }
    checks.iter().all(|c| c.holds)
}
