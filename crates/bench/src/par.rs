//! Order-preserving parallel map for independent sweep points.
//!
//! Each point of a figure sweep (a `θ` value, a `g` value, …) generates
//! its own workload and runs its own engines — embarrassingly parallel.
//! [`par_map`] fans the points out over scoped crossbeam threads and
//! returns results in input order, so tables and checks are unaffected by
//! scheduling. Determinism is preserved because every sweep point derives
//! its randomness from its own explicit seed, never from shared state.

/// Applies `f` to every item on its own thread (bounded by available
/// parallelism), returning outputs in input order.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    par_map_with_workers(items, workers, f)
}

/// [`par_map`] with an explicit worker count. Exposed so tests can force
/// the multi-threaded path on single-core machines (where [`par_map`]
/// would otherwise take the serial fallback).
fn par_map_with_workers<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    // Work queue of (index, item); results land in their slot.
    let queue = crossbeam::queue::SegQueue::new();
    for pair in items.into_iter().enumerate() {
        queue.push(pair);
    }
    crossbeam::thread::scope(|scope| {
        // Bounded to `n`: the channel can never hold more than one result
        // per item, so a capacity of `n` makes the bound explicit (and a
        // stalled collector backpressures workers instead of buffering
        // without limit).
        let (tx, rx) = crossbeam::channel::bounded::<(usize, U)>(n);
        for _ in 0..workers.min(n) {
            let queue = &queue;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move |_| {
                while let Some((i, item)) = queue.pop() {
                    let out = f(item);
                    tx.send((i, out)).expect("collector outlives workers");
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            slots[i] = Some(out);
        }
    })
    .expect("worker panicked");

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Builds the redundant hierarchies of a [`MultiHierarchy`] in parallel,
/// one BFS per root over [`par_map`]. Each tree derives only from the
/// shared (immutable) topology and its own root, so the result is
/// identical to the serial `MultiHierarchy::with_roots` — at `N = 10^5`
/// the per-root BFS dominates multi-tree setup, and this fans it out.
///
/// # Panics
///
/// As `MultiHierarchy::from_trees`: empty or duplicate `roots`.
pub fn build_multi_hierarchy(
    topology: &ifi_overlay::Topology,
    roots: &[ifi_sim::PeerId],
) -> ifi_hierarchy::MultiHierarchy {
    let trees = par_map(roots.to_vec(), |r| {
        ifi_hierarchy::Hierarchy::bfs(topology, r)
    });
    ifi_hierarchy::MultiHierarchy::from_trees(trees)
}

/// [`par_map`] that additionally measures each sweep point's wall-clock
/// duration on its worker thread, returning `(output, duration)` pairs in
/// input order. Used to profile figure sweeps without perturbing their
/// deterministic outputs.
pub fn par_map_timed<T, U, F>(items: Vec<T>, f: F) -> Vec<(U, std::time::Duration)>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map(items, |item| {
        let t0 = std::time::Instant::now();
        let out = f(item);
        (out, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |x: u64| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = par_map(Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn runs_real_work_in_parallel_without_corruption() {
        // Each task does nontrivial deterministic work; outputs must be
        // exactly reproducible regardless of scheduling.
        let a = par_map((0..16).collect(), |seed: u64| {
            let mut acc = seed;
            for _ in 0..10_000 {
                acc = ifi_sim::mix64(acc);
            }
            acc
        });
        let b: Vec<u64> = (0..16)
            .map(|seed: u64| {
                let mut acc = seed;
                for _ in 0..10_000 {
                    acc = ifi_sim::mix64(acc);
                }
                acc
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn timed_map_preserves_outputs_and_measures() {
        let out = par_map_timed((0..8).collect(), |x: u64| {
            let mut acc = x;
            for _ in 0..1000 {
                acc = ifi_sim::mix64(acc);
            }
            acc
        });
        let plain: Vec<u64> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(
            plain,
            par_map((0..8).collect(), |x: u64| {
                let mut acc = x;
                for _ in 0..1000 {
                    acc = ifi_sim::mix64(acc);
                }
                acc
            })
        );
        // Durations are measured (non-negative by type; at least present).
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn preserves_order_under_shuffled_completion() {
        // Force completion order to differ from input order: each item
        // sleeps for a duration drawn from a seeded shuffle, so late
        // inputs routinely finish first. Results must still come back in
        // input order, and the bounded channel must absorb every result
        // (capacity = n) without deadlocking.
        let n = 24u64;
        let seed = 0x5EED_5EED;
        let out = par_map_with_workers((0..n).collect(), 4, |i: u64| {
            let rank = ifi_sim::mix64(seed ^ i) % n;
            std::thread::sleep(std::time::Duration::from_millis(rank / 4));
            (i, rank)
        });
        let expect: Vec<(u64, u64)> = (0..n).map(|i| (i, ifi_sim::mix64(seed ^ i) % n)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_multi_hierarchy_matches_serial_build() {
        use ifi_sim::PeerId;
        let topo = ifi_overlay::Topology::random_regular(300, 4, &mut ifi_sim::DetRng::new(21));
        let roots = [PeerId::new(7), PeerId::new(42), PeerId::new(199)];
        let parallel = build_multi_hierarchy(&topo, &roots);
        let serial = ifi_hierarchy::MultiHierarchy::with_roots(&topo, &roots);
        assert_eq!(parallel.roots(), serial.roots());
        for (a, b) in parallel.trees().iter().zip(serial.trees()) {
            assert_eq!(a, b, "parallel BFS must be bit-identical to serial");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1u32, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    #[should_panic]
    fn timed_worker_panics_propagate() {
        // The timing wrapper must not swallow a worker panic: a sweep
        // point that dies should still abort the whole figure run.
        let _ = par_map_timed(vec![1u32, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
