//! The approximate-engine case registry: error claims under exploration.
//!
//! The exact registry ([`crate::cases`]) asks "is the answer right?"; the
//! approximate engines ship a weaker but *certified* claim instead — an
//! ε-bound, a recall floor, a one-sided soundness guarantee — and this
//! registry explores whether those claims actually survive adversarial
//! schedules, message loss, duplication, and a mid-run kill/revive of a
//! leaf.
//!
//! Three **clean** cases, one per engine:
//!
//! * `approx-sketch-clean`: the Space-Saving gossip sketch-merge engine
//!   at an honest capacity; every estimate stays within `⌈ε·V⌉` of the
//!   truth and no frequent item goes missing ([`EpsilonBoundOracle`]).
//! * `approx-topk-clean`: the threshold-algorithm top-k engine in
//!   lossless mode; returned values are exact, recall is 1, and the
//!   answer certifies ([`TopKRecallOracle`]).
//! * `approx-threshold-clean`: the zero-traffic local-thresholding
//!   comparator; at no checkpoint may the root overclaim
//!   ([`ThresholdSoundnessOracle`]).
//!
//! Three **mis-tuned negatives** the harness must catch and shrink to
//! replayable artifacts:
//!
//! * `bug-sketch-overclaim`: a capacity-2 sketch claiming ε = 1/64 — the
//!   answer can neither cover the frequent set nor honor the bound.
//! * `bug-topk-starved`: `k = 8` behind a prune capacity of 1 while
//!   claiming perfect recall — seven of the true top-8 are pruned away.
//! * `bug-threshold-optimist`: the `#[doc(hidden)]` optimistic toggle on
//!   a crafted nine-peer split where every holder clears the report
//!   budget yet the global value sits below `t` — the root answers *yes*
//!   to a false comparison.
//!
//! The registry is deliberately separate from [`crate::cases::all_cases`]
//! (whose shape the exact-suite accounting pins); the bench approx smoke
//! and the `experiments approx-smoke` subcommand drive this one.
//!
//! [`EpsilonBoundOracle`]: crate::oracle::EpsilonBoundOracle
//! [`TopKRecallOracle`]: crate::oracle::TopKRecallOracle
//! [`ThresholdSoundnessOracle`]: crate::oracle::ThresholdSoundnessOracle

use ifi_hierarchy::Hierarchy;
use ifi_sim::{Des, Duration, FaultPlan, PeerId, RelConfig, SimConfig, SimTime};
use ifi_workload::{GroundTruth, ItemId, SystemData};
use netfilter::local_threshold::{LocalThresholdConfig, LocalThresholdProtocol};
use netfilter::sketch::{SketchConfig, SketchProtocol};
use netfilter::topk::{TopKConfig, TopKProtocol};
use netfilter::Threshold;

use crate::cases::{make_case, workload, Case};
use crate::explore::ExploreConfig;
use crate::oracle::{EpsilonBoundOracle, Oracle, ThresholdSoundnessOracle, TopKRecallOracle};

/// The leaf every clean case kills mid-run and revives half a query
/// later: under `Hierarchy::balanced(9, 3)` peer 8 reports to peer 2.
const CHURNED_LEAF: usize = 8;

fn kill_at() -> SimTime {
    SimTime::from_micros(250_000)
}

fn revive_at() -> SimTime {
    SimTime::from_micros(1_500_000)
}

fn clean_budget(seed: u64) -> ExploreConfig {
    ExploreConfig {
        seed,
        trials: 60,
        check_every: Duration::from_secs(1),
        horizon: None,
        drops_per_trial: 2,
        drop_seq_horizon: 200,
        shrink_budget: 300,
        ..ExploreConfig::default()
    }
}

fn negative_budget(seed: u64) -> ExploreConfig {
    ExploreConfig {
        seed,
        trials: 60,
        check_every: Duration::from_secs(1),
        horizon: None,
        drops_per_trial: 0,
        drop_seq_horizon: 200,
        shrink_budget: 200,
        ..ExploreConfig::default()
    }
}

fn faulty_sim(seed: u64, drops: &[u64]) -> SimConfig {
    SimConfig::default().with_seed(seed).with_faults(
        FaultPlan::none()
            .with_drop(0.05)
            .with_duplication(0.05)
            .with_scheduled_drops(drops.iter().copied()),
    )
}

/// The honest sketch engine under loss, duplication, and leaf churn: the
/// claimed ε must hold and the frequent set must be covered on every
/// schedule.
fn sketch_clean(seed: u64) -> Case {
    let data = workload(seed);
    let h = Hierarchy::balanced(9, 3);
    let cfg = SketchConfig::new(32);
    let truth = GroundTruth::compute(&data);
    let threshold = cfg.threshold.resolve(data.total_value());
    let claimed_epsilon = cfg.claimed_epsilon;
    let root = h.root();
    let build = move |drops: &[u64]| {
        let mut w = SketchProtocol::build_world_reliable(
            &cfg,
            &h,
            &data,
            faulty_sim(seed, drops),
            RelConfig::default(),
        );
        w.schedule_kill(kill_at(), PeerId::new(CHURNED_LEAF));
        w.schedule_revive(revive_at(), PeerId::new(CHURNED_LEAF));
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<SketchProtocol>>>> {
        vec![Box::new(EpsilonBoundOracle {
            root,
            truth: truth.clone(),
            threshold,
            claimed_epsilon,
        })]
    };
    make_case(
        "approx-sketch-clean",
        "sketch",
        None,
        clean_budget(seed),
        build,
        oracles,
    )
}

/// A deliberately starved sketch (capacity 2) claiming ε = 1/64: the
/// ε-bound oracle must fire on the unperturbed schedule already.
fn sketch_overclaim(seed: u64) -> Case {
    let data = workload(seed);
    let h = Hierarchy::balanced(9, 3);
    let cfg = SketchConfig::new(2).with_claimed_epsilon(1.0 / 64.0);
    let truth = GroundTruth::compute(&data);
    let threshold = cfg.threshold.resolve(data.total_value());
    let claimed_epsilon = cfg.claimed_epsilon;
    let root = h.root();
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        let mut w =
            SketchProtocol::build_world_reliable(&cfg, &h, &data, sim, RelConfig::default());
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<SketchProtocol>>>> {
        vec![Box::new(EpsilonBoundOracle {
            root,
            truth: truth.clone(),
            threshold,
            claimed_epsilon,
        })]
    };
    make_case(
        "bug-sketch-overclaim",
        "sketch",
        Some("epsilon-bound"),
        negative_budget(seed),
        build,
        oracles,
    )
}

/// The lossless top-k engine under loss, duplication, and leaf churn:
/// exact values, perfect recall, certified — on every schedule.
fn topk_clean(seed: u64) -> Case {
    let data = workload(seed);
    let h = Hierarchy::balanced(9, 3);
    let k = 5;
    let cfg = TopKConfig::lossless(k);
    let truth = GroundTruth::compute(&data);
    let expected: Vec<(ItemId, u64)> = truth.globals().iter().copied().take(k).collect();
    let root = h.root();
    let build = move |drops: &[u64]| {
        let mut w = TopKProtocol::build_world_reliable(
            &cfg,
            &h,
            &data,
            faulty_sim(seed, drops),
            RelConfig::default(),
        );
        w.schedule_kill(kill_at(), PeerId::new(CHURNED_LEAF));
        w.schedule_revive(revive_at(), PeerId::new(CHURNED_LEAF));
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<TopKProtocol>>>> {
        vec![Box::new(TopKRecallOracle {
            root,
            truth: truth.clone(),
            expected: expected.clone(),
            claimed_recall: 1.0,
        })]
    };
    make_case(
        "approx-topk-clean",
        "topk",
        None,
        clean_budget(seed),
        build,
        oracles,
    )
}

/// A top-8 query forced through a prune capacity of 1 while still
/// claiming perfect recall: the recall oracle must fire immediately.
fn topk_starved(seed: u64) -> Case {
    let data = workload(seed);
    let h = Hierarchy::balanced(9, 3);
    let k = 8;
    let cfg = TopKConfig::new(k).with_prune_cap(1);
    let truth = GroundTruth::compute(&data);
    let expected: Vec<(ItemId, u64)> = truth.globals().iter().copied().take(k).collect();
    let root = h.root();
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        let mut w = TopKProtocol::build_world_reliable(&cfg, &h, &data, sim, RelConfig::default());
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<TopKProtocol>>>> {
        vec![Box::new(TopKRecallOracle {
            root,
            truth: truth.clone(),
            expected: expected.clone(),
            claimed_recall: 1.0,
        })]
    };
    make_case(
        "bug-topk-starved",
        "topk",
        Some("topk-recall"),
        negative_budget(seed),
        build,
        oracles,
    )
}

/// The sound comparator asking about the heaviest item at half its true
/// value: loss and churn may delay the *yes* but can never produce an
/// unsound one, and the running lower bound never exceeds the truth.
fn threshold_clean(seed: u64) -> Case {
    let data = workload(seed);
    let h = Hierarchy::balanced(9, 3);
    let truth = GroundTruth::compute(&data);
    let (item, truth_value) = truth.globals()[0];
    let cfg = LocalThresholdConfig::new(Threshold::Absolute((truth_value / 2).max(1)));
    let root = h.root();
    let build = move |drops: &[u64]| {
        let mut w = LocalThresholdProtocol::build_world_reliable(
            &cfg,
            &h,
            &data,
            item,
            faulty_sim(seed, drops),
            RelConfig::default(),
        );
        w.schedule_kill(kill_at(), PeerId::new(CHURNED_LEAF));
        w.schedule_revive(revive_at(), PeerId::new(CHURNED_LEAF));
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<LocalThresholdProtocol>>>> {
        vec![Box::new(ThresholdSoundnessOracle { root, truth_value })]
    };
    make_case(
        "approx-threshold-clean",
        "threshold",
        None,
        clean_budget(seed),
        build,
        oracles,
    )
}

/// The optimistic toggle on the crafted split that defeats it: seven
/// peers hold 9 units each (budget `⌈70/9⌉ = 8` — everyone reports), two
/// hold nothing, and `t = 70` exceeds the true value 63. The optimist
/// extrapolates the silent peers to `budget − 1` and answers *yes*.
fn threshold_optimist(seed: u64) -> Case {
    let item = ItemId(0);
    let local: Vec<Vec<(ItemId, u64)>> = (0..9)
        .map(|i| if i < 7 { vec![(item, 9)] } else { Vec::new() })
        .collect();
    let data = SystemData::from_local_sets(local, 1);
    let h = Hierarchy::balanced(9, 3);
    let cfg = LocalThresholdConfig::new(Threshold::Absolute(70)).with_optimism();
    let truth_value = 63;
    let root = h.root();
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        let mut w = LocalThresholdProtocol::build_world_reliable(
            &cfg,
            &h,
            &data,
            item,
            sim,
            RelConfig::default(),
        );
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<LocalThresholdProtocol>>>> {
        vec![Box::new(ThresholdSoundnessOracle { root, truth_value })]
    };
    make_case(
        "bug-threshold-optimist",
        "threshold",
        Some("threshold-soundness"),
        negative_budget(seed),
        build,
        oracles,
    )
}

/// The approximate-engine registry for one seed: three clean cases,
/// three mis-tuned negatives.
pub fn approx_cases(seed: u64) -> Vec<Case> {
    vec![
        sketch_clean(seed),
        topk_clean(seed),
        threshold_clean(seed),
        sketch_overclaim(seed),
        topk_starved(seed),
        threshold_optimist(seed),
    ]
}

/// Looks an approximate case up by name (used by the replay subcommand).
pub fn find_approx_case(name: &str, seed: u64) -> Option<Case> {
    approx_cases(seed).into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64, trials: usize) -> ExploreConfig {
        ExploreConfig {
            trials,
            ..clean_budget(seed)
        }
    }

    #[test]
    fn registry_names_are_unique_and_expectations_partition() {
        let cases = approx_cases(1);
        assert_eq!(cases.len(), 6);
        let names: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.expect_violation.is_none())
                .count(),
            3,
            "three clean engines"
        );
        // One clean case per engine family.
        let clean: std::collections::BTreeSet<&str> = cases
            .iter()
            .filter(|c| c.expect_violation.is_none())
            .map(|c| c.protocol)
            .collect();
        assert_eq!(clean.len(), 3);
        assert!(find_approx_case("bug-topk-starved", 1).is_some());
        assert!(find_approx_case("no-such-engine", 1).is_none());
    }

    #[test]
    fn clean_cases_hold_on_a_handful_of_schedules() {
        for case in approx_cases(11) {
            if case.expect_violation.is_some() {
                continue;
            }
            let report = case.explore_with(&quick(11, 6));
            assert!(
                report.violation.is_none(),
                "{} violated: {:?}",
                case.name,
                report.violation
            );
            assert!(
                report.distinct_schedules >= 2,
                "{} never diverged",
                case.name
            );
        }
    }

    /// Every mis-tuned negative fires on its very first (unperturbed)
    /// schedule, names the right oracle, shrinks, and replays.
    #[test]
    fn negatives_fire_shrink_and_replay() {
        for case in approx_cases(7) {
            let Some(expect) = case.expect_violation else {
                continue;
            };
            let report = case.explore_with(&quick(7, 3));
            let found = report
                .violation
                .unwrap_or_else(|| panic!("{} did not fire", case.name));
            assert_eq!(found.violation.oracle, expect, "{}", case.name);
            assert_eq!(found.trial, 0, "{} needed perturbation to fire", case.name);
            // The shrunk perturbation still reproduces it bit for bit.
            let again = case
                .replay(&found.shrunk)
                .unwrap_or_else(|| panic!("{} shrunk repro went quiet", case.name));
            assert_eq!(again.oracle, expect, "{}", case.name);
        }
    }
}
