//! Random exploration and exact replay of schedule decisions.
//!
//! The contract that makes shrinking and artifacts work: a world's
//! execution is a pure function of (seed, fault plan, decision script).
//! [`RandomStrategy`] draws decisions from its own [`DetRng`] — separate
//! from the world's — and logs every non-default one as
//! `(consultation index, decision)`. [`ReplayStrategy`] re-applies such a
//! script, answering `Take(0)` everywhere else, which reproduces the
//! original execution exactly: the kernel consults the strategy at
//! deterministic points, so equal decision sequences yield equal runs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ifi_sim::{DetRng, EventInfo, ScheduleDecision, ScheduleStrategy};

/// Shared log of the non-default decisions a [`RandomStrategy`] made,
/// keyed by consultation index. Shared via `Rc` so the explorer keeps a
/// handle that survives a handler panic inside `catch_unwind`.
pub type DecisionLog = Rc<RefCell<Vec<(u64, ScheduleDecision)>>>;

/// Tuning knobs for [`RandomStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct StrategyKnobs {
    /// Probability of taking a non-head event from a tied batch.
    pub reorder: f64,
    /// Probability of pushing one delivery of the batch later.
    pub delay: f64,
    /// Upper bound on a manufactured delivery delay, in microseconds.
    pub max_delay_micros: u64,
}

impl Default for StrategyKnobs {
    fn default() -> Self {
        StrategyKnobs {
            reorder: 0.5,
            delay: 0.03,
            max_delay_micros: 120_000,
        }
    }
}

/// Seeded schedule perturbation: reorders tied batches and manufactures
/// delivery delays, recording every non-default decision.
#[derive(Debug)]
pub struct RandomStrategy {
    rng: DetRng,
    knobs: StrategyKnobs,
    consultations: u64,
    log: DecisionLog,
}

impl RandomStrategy {
    /// Creates a strategy drawing from `rng`, logging into `log`.
    pub fn new(rng: DetRng, knobs: StrategyKnobs, log: DecisionLog) -> Self {
        RandomStrategy {
            rng,
            knobs,
            consultations: 0,
            log,
        }
    }
}

impl ScheduleStrategy for RandomStrategy {
    fn decide(&mut self, batch: &[EventInfo]) -> ScheduleDecision {
        let idx = self.consultations;
        self.consultations += 1;
        // Occasionally push one delivery later — a reordering no latency
        // sample would produce. Only deliveries are eligible (the kernel
        // degrades anything else to a take anyway).
        if self.rng.chance(self.knobs.delay) {
            let deliveries: Vec<usize> = batch
                .iter()
                .enumerate()
                .filter(|(_, e)| e.tag.is_deliver())
                .map(|(i, _)| i)
                .collect();
            if !deliveries.is_empty() {
                let index = deliveries[self.rng.below(deliveries.len() as u64) as usize];
                let micros = self
                    .rng
                    .range_inclusive(1, self.knobs.max_delay_micros.max(1));
                let d = ScheduleDecision::Delay { index, micros };
                self.log.borrow_mut().push((idx, d));
                return d;
            }
        }
        // Permute the tie-break: fire a non-head event of the batch.
        if batch.len() > 1 && self.rng.chance(self.knobs.reorder) {
            let i = self.rng.below(batch.len() as u64) as usize;
            if i != 0 {
                let d = ScheduleDecision::Take(i);
                self.log.borrow_mut().push((idx, d));
                return d;
            }
        }
        ScheduleDecision::Take(0)
    }
}

/// Replays a recorded decision script: the decision logged at each
/// consultation index, `Take(0)` (the unperturbed schedule) elsewhere.
#[derive(Debug)]
pub struct ReplayStrategy {
    decisions: BTreeMap<u64, ScheduleDecision>,
    consultations: u64,
}

impl ReplayStrategy {
    /// Creates a replayer for the given `(consultation, decision)` pairs.
    pub fn new(decisions: impl IntoIterator<Item = (u64, ScheduleDecision)>) -> Self {
        ReplayStrategy {
            decisions: decisions.into_iter().collect(),
            consultations: 0,
        }
    }
}

impl ScheduleStrategy for ReplayStrategy {
    fn decide(&mut self, _batch: &[EventInfo]) -> ScheduleDecision {
        let idx = self.consultations;
        self.consultations += 1;
        self.decisions
            .get(&idx)
            .copied()
            .unwrap_or(ScheduleDecision::Take(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_strategy_logs_exactly_its_non_default_decisions() {
        let log: DecisionLog = Rc::new(RefCell::new(Vec::new()));
        let knobs = StrategyKnobs {
            reorder: 1.0,
            delay: 0.0,
            max_delay_micros: 1,
        };
        let mut s = RandomStrategy::new(DetRng::new(7), knobs, log.clone());
        let batch = [
            EventInfo {
                time: ifi_sim::SimTime::ZERO,
                seq: 1,
                tag: ifi_sim::EventTag::Timer {
                    peer: ifi_sim::PeerId::new(0),
                },
            },
            EventInfo {
                time: ifi_sim::SimTime::ZERO,
                seq: 2,
                tag: ifi_sim::EventTag::Timer {
                    peer: ifi_sim::PeerId::new(1),
                },
            },
        ];
        let mut non_default = 0;
        for _ in 0..50 {
            if s.decide(&batch) != ScheduleDecision::Take(0) {
                non_default += 1;
            }
        }
        assert_eq!(log.borrow().len(), non_default);
        assert!(non_default > 0, "reorder=1.0 must perturb sometimes");
        // Consultation indices are strictly increasing.
        let idxs: Vec<u64> = log.borrow().iter().map(|&(i, _)| i).collect();
        assert!(idxs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn replay_strategy_applies_the_script_at_the_right_consultations() {
        let mut r = ReplayStrategy::new([
            (1, ScheduleDecision::Take(3)),
            (
                2,
                ScheduleDecision::Delay {
                    index: 0,
                    micros: 9,
                },
            ),
        ]);
        let batch = [EventInfo {
            time: ifi_sim::SimTime::ZERO,
            seq: 0,
            tag: ifi_sim::EventTag::Start {
                peer: ifi_sim::PeerId::new(0),
            },
        }];
        assert_eq!(r.decide(&batch), ScheduleDecision::Take(0));
        assert_eq!(r.decide(&batch), ScheduleDecision::Take(3));
        assert_eq!(
            r.decide(&batch),
            ScheduleDecision::Delay {
                index: 0,
                micros: 9
            }
        );
        assert_eq!(r.decide(&batch), ScheduleDecision::Take(0));
    }
}
