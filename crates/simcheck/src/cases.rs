//! The case registry: what the harness explores and what it must find.
//!
//! Three **clean** cases — one per protocol family — whose oracles must
//! hold under every explored schedule:
//!
//! * `netfilter-clean`: the one-shot query with the reliability envelope
//!   under probabilistic loss, duplication, and scheduled drops; the root
//!   must stay exact and the byte accounting must reconcile.
//! * `resilient-clean`: periodic epochs in plain mode under duplication
//!   and scheduled drops; epochs never regress, answers never inflate,
//!   `Complete` certificates are sound.
//! * `maintain-clean`: hierarchy repair through a mid-run crash; the
//!   surviving tree must be well-formed at the horizon.
//!
//! Three **pinned historical bugs**, re-introduced through the
//! `#[doc(hidden)]` legacy toggles on the production state machines; the
//! matching oracle must fire within the exploration budget and shrink to
//! a replayable artifact:
//!
//! * `bug-churn-race`: the pre-fix tick sweep forgot suspected neighbors
//!   before the parent status check, panicking when the parent died.
//! * `bug-count-to-infinity`: without depth-following and the
//!   universe-size attach bound, a root death leaves a live attachment
//!   cycle with frozen finite depths.
//! * `bug-double-merge`: without the insert-guard protecting the merge, a
//!   duplicated aggregation frame is folded in twice, inflating the
//!   epoch answer above ground truth.
//!
//! Each case monomorphizes its protocol internally and exposes
//! type-erased `explore`/`replay` entry points, so the bench smoke, the
//! workspace tests, and the `simcheck-replay` subcommand all drive the
//! same registry.

use std::rc::Rc;

use ifi_hierarchy::{Hierarchy, MaintainProtocol};
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{
    sansio_world, Des, Duration, FaultPlan, PeerId, Protocol, RelConfig, SimConfig, SimTime, World,
};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::resilient::{ResilientConfig, ResilientProtocol};
use netfilter::{NetFilter, NetFilterConfig, Threshold};

use crate::explore::{explore, replay, ExploreConfig, ExploreReport, Perturbation};
use crate::oracle::{
    CensusSoundnessOracle, CostOracle, EpochFenceOracle, ExactnessOracle, NoInflationOracle,
    Oracle, TreeOracle, Violation,
};

type ExploreFn = Box<dyn Fn(&ExploreConfig) -> ExploreReport>;
type ReplayFn = Box<dyn Fn(&ExploreConfig, &Perturbation) -> Option<Violation>>;

/// One registered configuration the harness explores.
pub struct Case {
    /// Stable case name (doubles as the artifact file stem).
    pub name: &'static str,
    /// Protocol family, for per-(protocol, seed) schedule accounting.
    pub protocol: &'static str,
    /// `Some(oracle)` for pinned bugs: the oracle expected to fire.
    pub expect_violation: Option<&'static str>,
    /// The exploration budget this case ships with.
    pub config: ExploreConfig,
    explore_fn: ExploreFn,
    replay_fn: ReplayFn,
}

impl std::fmt::Debug for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Case")
            .field("name", &self.name)
            .field("protocol", &self.protocol)
            .field("expect_violation", &self.expect_violation)
            .finish_non_exhaustive()
    }
}

impl Case {
    /// Explores with the case's own budget.
    pub fn explore(&self) -> ExploreReport {
        (self.explore_fn)(&self.config)
    }

    /// Explores with an overridden budget (e.g. fewer trials in tests).
    pub fn explore_with(&self, cfg: &ExploreConfig) -> ExploreReport {
        (self.explore_fn)(cfg)
    }

    /// Replays a recorded perturbation; returns the violation it
    /// reproduces, if any.
    pub fn replay(&self, pert: &Perturbation) -> Option<Violation> {
        (self.replay_fn)(&self.config, pert)
    }
}

pub(crate) fn make_case<P, B, O>(
    name: &'static str,
    protocol: &'static str,
    expect_violation: Option<&'static str>,
    config: ExploreConfig,
    build: B,
    oracles: O,
) -> Case
where
    P: Protocol + 'static,
    B: Fn(&[u64]) -> World<P> + 'static,
    O: Fn() -> Vec<Box<dyn Oracle<P>>> + 'static,
{
    let build = Rc::new(build);
    let oracles = Rc::new(oracles);
    let (build2, oracles2) = (Rc::clone(&build), Rc::clone(&oracles));
    Case {
        name,
        protocol,
        expect_violation,
        config,
        explore_fn: Box::new(move |cfg| explore(cfg, build.as_ref(), oracles.as_ref())),
        replay_fn: Box::new(move |cfg, pert| replay(cfg, build2.as_ref(), oracles2.as_ref(), pert)),
    }
}

pub(crate) fn secs(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

pub(crate) fn workload(seed: u64) -> SystemData {
    SystemData::generate(
        &WorkloadParams {
            peers: 9,
            items: 300,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    )
}

fn nf_config() -> NetFilterConfig {
    NetFilterConfig::builder()
        .filter_size(24)
        .filters(2)
        .threshold(Threshold::Ratio(0.01))
        .build()
}

fn hb() -> HeartbeatConfig {
    HeartbeatConfig {
        interval: Duration::from_millis(500),
        timeout: Duration::from_millis(1600),
        bytes: 8,
    }
}

fn rc() -> ResilientConfig {
    ResilientConfig {
        heartbeat: hb(),
        query_period: Duration::from_secs(4),
        epoch_timeout: Duration::from_secs(12),
        takeover_grace: Duration::from_secs(4),
        takeover_stagger: Duration::from_secs(3),
    }
}

/// One-shot netFilter with the reliability envelope under probabilistic
/// loss + duplication + scheduled drops: exact and fully accounted on
/// every schedule.
fn netfilter_clean(seed: u64) -> Case {
    let data = workload(seed);
    let topo = Topology::grid(3, 3);
    let h = Hierarchy::bfs(&topo, PeerId::new(0));
    let cfg = nf_config();
    let instant = NetFilter::new(cfg.clone()).run(&h, &data);
    let expected = instant.frequent_items().to_vec();
    let cost = instant.cost().clone();
    let root = h.root();
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default().with_seed(seed).with_faults(
            FaultPlan::none()
                .with_drop(0.05)
                .with_duplication(0.05)
                .with_scheduled_drops(drops.iter().copied()),
        );
        let mut w =
            NetFilterProtocol::build_world_reliable(&cfg, &h, &data, sim, RelConfig::default());
        w.enable_metrics_sink();
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<NetFilterProtocol>>>> {
        vec![
            Box::new(ExactnessOracle {
                root,
                expected: expected.clone(),
            }),
            Box::new(CostOracle { cost: cost.clone() }),
        ]
    };
    make_case(
        "netfilter-clean",
        "netfilter",
        None,
        ExploreConfig {
            seed,
            trials: 60,
            check_every: Duration::from_secs(2),
            horizon: None,
            drops_per_trial: 2,
            drop_seq_horizon: 200,
            shrink_budget: 300,
            ..ExploreConfig::default()
        },
        build,
        oracles,
    )
}

/// Shared body of `resilient-clean` and `bug-double-merge`: same world,
/// same faults, same oracles — the only difference is the legacy toggle.
fn resilient_case(
    name: &'static str,
    expect_violation: Option<&'static str>,
    legacy_double_merge: bool,
    seed: u64,
) -> Case {
    let data = workload(seed);
    let topo = Topology::grid(3, 3);
    let h = Hierarchy::bfs(&topo, PeerId::new(0));
    let cfg = nf_config();
    let truth = GroundTruth::compute(&data);
    let expected = truth.frequent_items(cfg.threshold.resolve(data.total_value()));
    let data2 = data.clone();
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default().with_seed(seed).with_faults(
            FaultPlan::none()
                .with_duplication(0.25)
                .with_scheduled_drops(drops.iter().copied()),
        );
        let mut w = ResilientProtocol::build_world(&cfg, rc(), &topo, &h, &data, sim);
        if legacy_double_merge {
            for i in 0..w.peer_count() {
                w.peer_mut(PeerId::new(i)).enable_legacy_double_merge();
            }
        }
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<ResilientProtocol>>>> {
        vec![
            Box::new(EpochFenceOracle::new()),
            Box::new(NoInflationOracle {
                truth: GroundTruth::compute(&data2),
            }),
            Box::new(CensusSoundnessOracle {
                expected: expected.clone(),
            }),
        ]
    };
    make_case(
        name,
        "resilient",
        expect_violation,
        ExploreConfig {
            seed,
            trials: 60,
            check_every: Duration::from_secs(1),
            horizon: Some(secs(20)),
            drops_per_trial: if legacy_double_merge { 0 } else { 2 },
            drop_seq_horizon: 400,
            shrink_budget: 200,
            ..ExploreConfig::default()
        },
        build,
        oracles,
    )
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaintainLegacy {
    None,
    ChurnRace,
    UnboundedDepth,
}

/// The world shape of one maintenance case: the overlay, a scripted
/// kill, and how long and how adversarially to explore.
struct MaintainScenario {
    topo: Topology,
    kill_at: SimTime,
    kill: PeerId,
    horizon: SimTime,
    drops_per_trial: usize,
}

/// Shared body of the maintenance cases: the scenario's overlay + BFS
/// hierarchy from peer 0, its scripted kill, and the tree oracle at the
/// horizon.
fn maintain_case(
    name: &'static str,
    expect_violation: Option<&'static str>,
    legacy: MaintainLegacy,
    scenario: MaintainScenario,
    seed: u64,
) -> Case {
    let MaintainScenario {
        topo,
        kill_at,
        kill,
        horizon,
        drops_per_trial,
    } = scenario;
    let root = PeerId::new(0);
    let h = Hierarchy::bfs(&topo, root);
    let topo2 = topo.clone();
    let build = move |drops: &[u64]| {
        let peers: Vec<MaintainProtocol> = (0..topo.peer_count())
            .map(|i| {
                let p = PeerId::new(i);
                let mut mp = MaintainProtocol::new(&h, p, topo.neighbors(p).to_vec(), hb());
                match legacy {
                    MaintainLegacy::None => {}
                    MaintainLegacy::ChurnRace => mp.enable_legacy_churn_race(),
                    MaintainLegacy::UnboundedDepth => mp.enable_legacy_unbounded_depth(),
                }
                mp
            })
            .collect();
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        let mut w = sansio_world(sim, peers);
        w.schedule_kill(kill_at, kill);
        w.enable_trace(64);
        w
    };
    let oracles = move || -> Vec<Box<dyn Oracle<Des<MaintainProtocol>>>> {
        vec![Box::new(TreeOracle {
            topology: topo2.clone(),
            root,
        })]
    };
    make_case(
        name,
        "maintain",
        expect_violation,
        ExploreConfig {
            seed,
            trials: 60,
            check_every: Duration::from_secs(2),
            horizon: Some(horizon),
            drops_per_trial,
            drop_seq_horizon: 400,
            shrink_budget: 800,
            ..ExploreConfig::default()
        },
        build,
        oracles,
    )
}

/// The full registry for one seed: three clean cases, three pinned bugs.
pub fn all_cases(seed: u64) -> Vec<Case> {
    vec![
        netfilter_clean(seed),
        resilient_case("resilient-clean", None, false, seed),
        // An interior peer dies mid-run; the survivors must repair back
        // to a well-formed tree under every schedule.
        maintain_case(
            "maintain-clean",
            None,
            MaintainLegacy::None,
            MaintainScenario {
                topo: Topology::grid(3, 3),
                kill_at: secs(5),
                kill: PeerId::new(4),
                horizon: secs(30),
                drops_per_trial: 2,
            },
            seed,
        ),
        // The root always has children, so its death drives the pre-fix
        // sweep into the strict status lookup: the historical panic.
        maintain_case(
            "bug-churn-race",
            Some("panic"),
            MaintainLegacy::ChurnRace,
            MaintainScenario {
                topo: Topology::grid(3, 3),
                kill_at: secs(5),
                kill: PeerId::new(0),
                horizon: secs(30),
                drops_per_trial: 0,
            },
            seed,
        ),
        // On a line, the root's death lets its orphan re-attach downhill,
        // closing a live cycle whose finite depths never climb without
        // depth-following: the count-to-infinity freeze.
        maintain_case(
            "bug-count-to-infinity",
            Some("tree"),
            MaintainLegacy::UnboundedDepth,
            MaintainScenario {
                topo: Topology::line(5),
                kill_at: secs(5),
                kill: PeerId::new(0),
                horizon: secs(40),
                drops_per_trial: 0,
            },
            seed,
        ),
        resilient_case("bug-double-merge", Some("no-inflation"), true, seed),
    ]
}

/// Looks a case up by name (used by the replay subcommand).
pub fn find_case(name: &str, seed: u64) -> Option<Case> {
    all_cases(seed).into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_expectations_partition() {
        let cases = all_cases(1);
        assert_eq!(cases.len(), 6);
        let names: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 6);
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.expect_violation.is_none())
                .count(),
            3,
            "three clean cases"
        );
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.expect_violation.is_some())
                .count(),
            3,
            "three pinned bugs"
        );
        // Every protocol family has a clean case, so the distinct-schedule
        // floor is asserted per (protocol, seed).
        let clean: std::collections::BTreeSet<&str> = cases
            .iter()
            .filter(|c| c.expect_violation.is_none())
            .map(|c| c.protocol)
            .collect();
        assert_eq!(clean.len(), 3);
        assert!(find_case("bug-churn-race", 1).is_some());
        assert!(find_case("no-such-case", 1).is_none());
    }
}
