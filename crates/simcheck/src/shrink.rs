//! Greedy perturbation shrinking.
//!
//! A violating trial's perturbation often contains hundreds of irrelevant
//! reorderings next to the one or two that matter, so element-at-a-time
//! deletion would exhaust any replay budget before converging. The
//! shrinker instead runs ddmin-style chunked passes: it tries deleting
//! runs of half the list, keeps any deletion whose replay still violates
//! *some* oracle (classic shrinking practice — the minimal repro may
//! surface a different facet of the same bug), and halves the chunk size
//! whenever a sweep makes no progress, down to single elements. Every
//! accepted candidate has been verified by an actual replay, so the
//! result is a true repro by construction.

use ifi_sim::{Protocol, World};

use crate::explore::{replay, ExploreConfig, Perturbation};
use crate::oracle::{Oracle, Violation};

struct Shrinker<'a, P: Protocol> {
    cfg: &'a ExploreConfig,
    build: &'a dyn Fn(&[u64]) -> World<P>,
    oracles: &'a dyn Fn() -> Vec<Box<dyn Oracle<P>>>,
    attempts: usize,
}

impl<P: Protocol> Shrinker<'_, P> {
    fn out_of_budget(&self) -> bool {
        self.attempts >= self.cfg.shrink_budget
    }

    fn try_replay(&mut self, cand: &Perturbation) -> Option<Violation> {
        self.attempts += 1;
        replay(self.cfg, self.build, self.oracles, cand)
    }

    /// One ddmin sweep family over one list of the perturbation:
    /// `select` projects the mutable list out of a candidate. Returns
    /// whether anything was removed.
    fn shrink_list<T: Clone>(
        &mut self,
        best: &mut Perturbation,
        best_v: &mut Violation,
        select: impl Fn(&mut Perturbation) -> &mut Vec<T>,
    ) -> bool {
        let mut improved = false;
        let mut chunk = select(best).len().div_ceil(2).max(1);
        loop {
            if select(best).is_empty() || self.out_of_budget() {
                return improved;
            }
            let mut removed_any = false;
            let mut i = 0;
            while i < select(best).len() {
                if self.out_of_budget() {
                    return improved;
                }
                let mut cand = best.clone();
                let list = select(&mut cand);
                let end = (i + chunk).min(list.len());
                list.drain(i..end);
                if let Some(v) = self.try_replay(&cand) {
                    *best = cand;
                    *best_v = v;
                    removed_any = true;
                    improved = true;
                    // The list shifted down; retry the same position.
                } else {
                    i += chunk;
                }
            }
            if !removed_any {
                if chunk == 1 {
                    return improved;
                }
                chunk = (chunk / 2).max(1);
            }
        }
    }
}

/// Minimizes `pert`, returning the smallest perturbation found and the
/// violation it reproduces. `violation` is the one originally observed;
/// it is returned unchanged if no smaller repro exists (or the empty
/// perturbation already violates — a schedule-independent bug).
pub fn shrink<P: Protocol>(
    cfg: &ExploreConfig,
    build: &dyn Fn(&[u64]) -> World<P>,
    oracles: &dyn Fn() -> Vec<Box<dyn Oracle<P>>>,
    pert: &Perturbation,
    violation: Violation,
) -> (Perturbation, Violation) {
    let mut best = pert.clone();
    let mut best_v = violation;
    let mut sh = Shrinker {
        cfg,
        build,
        oracles,
        attempts: 0,
    };

    // Fast path: schedule-independent bugs reproduce with no perturbation
    // at all, collapsing the chunked passes below to one replay.
    if !best.is_empty() && !sh.out_of_budget() {
        if let Some(v) = sh.try_replay(&Perturbation::default()) {
            return (Perturbation::default(), v);
        }
    }

    loop {
        let mut improved = false;
        improved |= sh.shrink_list(&mut best, &mut best_v, |p| &mut p.decisions);
        improved |= sh.shrink_list(&mut best, &mut best_v, |p| &mut p.extra_drops);
        if !improved || sh.out_of_budget() {
            return (best, best_v);
        }
    }
}
