//! Deterministic schedule exploration over the `ifi-sim` DES.
//!
//! A seeded DES run replays exactly one interleaving per seed; the suite
//! is therefore blind to every *other* legal ordering of the same
//! messages. This crate turns the kernel's [`ScheduleStrategy`] hook into
//! a small model checker:
//!
//! * [`strategy`] — a seeded [`RandomStrategy`] that perturbs tie-breaks
//!   and delivery timing while logging every non-default decision, and a
//!   [`ReplayStrategy`] that re-applies a recorded decision script bit
//!   for bit.
//! * [`oracle`] — invariant oracles checked at configurable intervals and
//!   at the end of a run: IFI exactness against the ground-truth fold,
//!   cost reconciliation, hierarchy well-formedness, epoch-fence
//!   monotonicity, answer non-inflation, and certificate soundness.
//! * [`explore`] — the trial loop: run many perturbed schedules, count
//!   distinct schedule fingerprints, and stop at the first oracle
//!   violation (handler panics are captured and reported as violations).
//! * [`shrink`] — greedy minimization of a violating perturbation to a
//!   minimal replayable repro.
//! * [`artifact`] — replayable repro files (seed + perturbation script +
//!   trace window) under `results/simcheck/`, consumed by the
//!   `experiments simcheck-replay` subcommand.
//! * [`approx`] — the approximate-engine registry: ε-bound / recall /
//!   soundness claims explored under loss, duplication, and leaf churn,
//!   plus three mis-tuned negatives the harness must catch.
//! * [`continuous`] — the continuous-engine registry: the standing-query
//!   window-consistency claim explored under the same faults, plus the
//!   planted retirement-dropping negative.
//! * [`cases`] — the registry of configurations the harness explores:
//!   clean netFilter / resilient / maintenance worlds whose oracles must
//!   hold under every schedule, plus three pinned historical bugs the
//!   harness must rediscover (heartbeat churn-race panic,
//!   count-to-infinity freeze, double-merge under duplication).
//! * [`scale`] — the complementary axis: one run per protocol family at
//!   `N = 10^4` on the dense-arena layout, all six oracles consulted
//!   (CI's `scale` job runs it in release mode).
//!
//! [`RandomStrategy`]: strategy::RandomStrategy
//! [`ReplayStrategy`]: strategy::ReplayStrategy
//! [`ScheduleStrategy`]: ifi_sim::ScheduleStrategy

#![warn(missing_docs)]

pub mod approx;
pub mod artifact;
pub mod cases;
pub mod continuous;
pub mod explore;
pub mod oracle;
pub mod scale;
pub mod shrink;
pub mod strategy;

pub use approx::{approx_cases, find_approx_case};
pub use artifact::{parse_artifact, write_artifact, Artifact};
pub use cases::{all_cases, find_case, Case};
pub use continuous::{continuous_cases, find_continuous_case};
pub use explore::{explore, replay, ExploreConfig, ExploreReport, FoundViolation, Perturbation};
pub use oracle::{Checkpoint, Oracle, Violation};
pub use scale::{run_scale_check, ScaleVerdict};
pub use strategy::{DecisionLog, RandomStrategy, ReplayStrategy, StrategyKnobs};
