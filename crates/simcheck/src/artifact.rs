//! Replayable repro artifacts.
//!
//! A violation is only useful if it can be re-run after the exploring
//! process is gone, so every rediscovered bug is serialized to a small
//! line-based `key = value` file under `results/simcheck/`:
//!
//! ```text
//! case = bug-double-merge
//! seed = 20080617
//! trial = 3
//! oracle = no-inflation
//! detail = peer 0 epoch 1: item ItemId(7) reported 40 > true value 20
//! decision = 112 take 2
//! decision = 340 delay 0 45211
//! drop = 87
//! trace = TraceEntry { .. }
//! ```
//!
//! `decision` and `drop` lines reconstruct the exact [`Perturbation`];
//! `trace` lines are a human-readable window of the events leading up to
//! the violation and are ignored by the parser. The
//! `experiments simcheck-replay <file>` subcommand loads an artifact and
//! re-runs its case.

use std::fs;
use std::path::{Path, PathBuf};

use ifi_sim::ScheduleDecision;

use crate::explore::{FoundViolation, Perturbation};

/// A parsed repro artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// The case name (see [`crate::cases::all_cases`]).
    pub case: String,
    /// The base seed the case was built with.
    pub seed: u64,
    /// The oracle the shrunk perturbation violates.
    pub oracle: String,
    /// Human-readable violation description.
    pub detail: String,
    /// The shrunk, replay-verified perturbation.
    pub perturbation: Perturbation,
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " | ")
}

/// Writes the shrunk repro of `found` as `<dir>/<case>-<seed>.repro`,
/// creating `dir` if needed. Returns the path written.
pub fn write_artifact(
    dir: &Path,
    case: &str,
    seed: u64,
    found: &FoundViolation,
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{case}-{seed}.repro"));
    let mut s = String::new();
    s.push_str("# ifi-simcheck repro — replay with: experiments simcheck-replay <this file>\n");
    s.push_str(&format!("case = {case}\n"));
    s.push_str(&format!("seed = {seed}\n"));
    s.push_str(&format!("trial = {}\n", found.trial));
    s.push_str(&format!(
        "oracle = {}\n",
        one_line(&found.shrunk_violation.oracle)
    ));
    s.push_str(&format!(
        "detail = {}\n",
        one_line(&found.shrunk_violation.detail)
    ));
    for &(idx, d) in &found.shrunk.decisions {
        match d {
            ScheduleDecision::Take(i) => s.push_str(&format!("decision = {idx} take {i}\n")),
            ScheduleDecision::Delay { index, micros } => {
                s.push_str(&format!("decision = {idx} delay {index} {micros}\n"))
            }
        }
    }
    for &seq in &found.shrunk.extra_drops {
        s.push_str(&format!("drop = {seq}\n"));
    }
    for line in &found.shrunk_violation.trace {
        s.push_str(&format!("trace = {}\n", one_line(line)));
    }
    fs::write(&path, s)?;
    Ok(path)
}

fn parse_decision(rest: &str) -> Result<(u64, ScheduleDecision), String> {
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let num =
        |s: &str| -> Result<u64, String> { s.parse().map_err(|_| format!("bad number {s:?}")) };
    match fields.as_slice() {
        [idx, "take", i] => Ok((num(idx)?, ScheduleDecision::Take(num(i)? as usize))),
        [idx, "delay", index, micros] => Ok((
            num(idx)?,
            ScheduleDecision::Delay {
                index: num(index)? as usize,
                micros: num(micros)?,
            },
        )),
        _ => Err(format!("unparseable decision {rest:?}")),
    }
}

/// Parses an artifact written by [`write_artifact`].
pub fn parse_artifact(path: &Path) -> Result<Artifact, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut case = None;
    let mut seed = None;
    let mut oracle = None;
    let mut detail = None;
    let mut perturbation = Perturbation::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: missing '='", lineno + 1));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "case" => case = Some(value.to_string()),
            "seed" => {
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("line {}: bad seed", lineno + 1))?,
                )
            }
            "oracle" => oracle = Some(value.to_string()),
            "detail" => detail = Some(value.to_string()),
            "trial" | "trace" => {}
            "decision" => perturbation
                .decisions
                .push(parse_decision(value).map_err(|e| format!("line {}: {e}", lineno + 1))?),
            "drop" => perturbation.extra_drops.push(
                value
                    .parse()
                    .map_err(|_| format!("line {}: bad drop seq", lineno + 1))?,
            ),
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    Ok(Artifact {
        case: case.ok_or("missing 'case'")?,
        seed: seed.ok_or("missing 'seed'")?,
        oracle: oracle.ok_or("missing 'oracle'")?,
        detail: detail.unwrap_or_default(),
        perturbation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Violation;

    #[test]
    fn artifacts_round_trip() {
        let found = FoundViolation {
            trial: 5,
            violation: Violation {
                oracle: "panic".into(),
                detail: "original\nmultiline".into(),
                trace: Vec::new(),
            },
            perturbation: Perturbation {
                decisions: vec![(3, ScheduleDecision::Take(1))],
                extra_drops: vec![10, 42],
            },
            shrunk: Perturbation {
                decisions: vec![
                    (3, ScheduleDecision::Take(1)),
                    (
                        90,
                        ScheduleDecision::Delay {
                            index: 2,
                            micros: 777,
                        },
                    ),
                ],
                extra_drops: vec![42],
            },
            shrunk_violation: Violation {
                oracle: "panic".into(),
                detail: "peer 4 is not tracked".into(),
                trace: vec!["Send { .. }".into(), "Deliver { .. }".into()],
            },
        };
        let dir = std::env::temp_dir().join("ifi-simcheck-artifact-test");
        let path = write_artifact(&dir, "bug-churn-race", 99, &found).expect("write");
        let parsed = parse_artifact(&path).expect("parse");
        assert_eq!(parsed.case, "bug-churn-race");
        assert_eq!(parsed.seed, 99);
        assert_eq!(parsed.oracle, "panic");
        assert_eq!(parsed.detail, "peer 4 is not tracked");
        assert_eq!(parsed.perturbation, found.shrunk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("ifi-simcheck-artifact-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.repro");
        std::fs::write(&p, "case = x\nseed = 1\noracle = o\ndecision = 1 warp 2\n").unwrap();
        assert!(parse_artifact(&p).unwrap_err().contains("unparseable"));
        std::fs::write(&p, "seed = 1\noracle = o\n").unwrap();
        assert!(parse_artifact(&p).unwrap_err().contains("case"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
