//! Invariant oracles: small structs judging a [`World`] mid-run or at the
//! end of a trial.
//!
//! Oracles are pure observers — they read protocol state through public
//! accessors and never mutate the world. Each returns `Err(detail)` on
//! the first violated invariant; the explorer converts that (or a handler
//! panic) into a [`Violation`] and hands the schedule to the shrinker.

use std::collections::BTreeMap;

use ifi_hierarchy::{Hierarchy, MaintainProtocol};
use ifi_overlay::Topology;
use ifi_sim::{Des, PeerId, Protocol, World};
use ifi_workload::{GroundTruth, ItemId};
use netfilter::continuous::{window_totals_from_scratch, ContinuousProtocol};
use netfilter::local_threshold::LocalThresholdProtocol;
use netfilter::phases;
use netfilter::protocol::NetFilterProtocol;
use netfilter::resilient::ResilientProtocol;
use netfilter::sketch::SketchProtocol;
use netfilter::topk::TopKProtocol;
use netfilter::CostBreakdown;

/// When an oracle is being consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkpoint {
    /// A periodic mid-run check (the world may be in a transient state).
    Interval,
    /// The end of the trial: quiescence, or the configured horizon.
    End,
}

/// One violated invariant (or a captured handler panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle that fired — `"panic"` for a captured handler panic.
    pub oracle: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// A window of the world's event trace leading up to the violation
    /// (empty when tracing was off or the run died in a panic).
    pub trace: Vec<String>,
}

/// An invariant over a `World<P>`, checked at interval and end
/// checkpoints. Implementations may carry state across checkpoints (e.g.
/// the epoch-fence oracle remembers the last epoch seen per peer).
pub trait Oracle<P: Protocol> {
    /// Stable oracle name, used in artifacts and expectations.
    fn name(&self) -> &'static str;
    /// Checks the invariant; `Err` describes the first violation.
    fn check(&mut self, world: &World<P>, at: Checkpoint) -> Result<(), String>;
}

/// netFilter exactness: at the end of the run the root must hold exactly
/// the ground-truth frequent-item set, values included.
#[derive(Debug)]
pub struct ExactnessOracle {
    /// The query root.
    pub root: PeerId,
    /// The ground-truth IFI answer.
    pub expected: Vec<(ItemId, u64)>,
}

impl Oracle<Des<NetFilterProtocol>> for ExactnessOracle {
    fn name(&self) -> &'static str {
        "exactness"
    }

    fn check(
        &mut self,
        world: &World<Des<NetFilterProtocol>>,
        at: Checkpoint,
    ) -> Result<(), String> {
        if at != Checkpoint::End {
            return Ok(());
        }
        match world.peer(self.root).result() {
            None => Err("root never produced a result".into()),
            Some(got) if got == self.expected.as_slice() => Ok(()),
            Some(got) => Err(format!(
                "root answer diverges from ground truth: {} items reported, {} expected",
                got.len(),
                self.expected.len()
            )),
        }
    }
}

/// Cost reconciliation: the metrics report must match the instant
/// engine's per-phase [`CostBreakdown`] byte-for-byte, with any extra
/// bytes confined to the declared retransmit overhead phase.
#[derive(Debug)]
pub struct CostOracle {
    /// The instant engine's per-phase byte accounting for this workload.
    pub cost: CostBreakdown,
}

impl Oracle<Des<NetFilterProtocol>> for CostOracle {
    fn name(&self) -> &'static str {
        "cost-reconcile"
    }

    fn check(
        &mut self,
        world: &World<Des<NetFilterProtocol>>,
        at: Checkpoint,
    ) -> Result<(), String> {
        if at != Checkpoint::End {
            return Ok(());
        }
        let report = world.metrics_report();
        self.cost
            .reconcile_with_overhead(&report, &[phases::RETRANSMIT])
    }
}

/// Hierarchy well-formedness at the end of a maintenance run: with the
/// root alive every live peer is attached and parent/depth links form a
/// consistent tree over topology edges (then double-checked through
/// [`Hierarchy::check_invariants`]); with the root dead every live peer
/// must have converged to the detached state — a frozen finite depth is
/// exactly the count-to-infinity failure.
#[derive(Debug)]
pub struct TreeOracle {
    /// The overlay the tree must be embedded in.
    pub topology: Topology,
    /// The hierarchy root.
    pub root: PeerId,
}

impl Oracle<Des<MaintainProtocol>> for TreeOracle {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn check(
        &mut self,
        world: &World<Des<MaintainProtocol>>,
        at: Checkpoint,
    ) -> Result<(), String> {
        if at != Checkpoint::End {
            return Ok(());
        }
        let n = world.peer_count();
        if !world.is_up(self.root) {
            // No live root anywhere: depth-following must have squeezed
            // every stale finite depth out of the system by now.
            for i in 0..n {
                let p = PeerId::new(i);
                if world.is_up(p) && !world.peer(p).is_detached() {
                    return Err(format!(
                        "root {} is dead but peer {p} still holds depth {:?} under parent {:?}",
                        self.root,
                        world.peer(p).depth(),
                        world.peer(p).parent()
                    ));
                }
            }
            return Ok(());
        }
        let mut parents: Vec<Option<PeerId>> = vec![None; n];
        for (i, slot) in parents.iter_mut().enumerate() {
            let p = PeerId::new(i);
            if !world.is_up(p) {
                continue;
            }
            let peer = world.peer(p);
            let Some(d) = peer.depth() else {
                return Err(format!("peer {p} is still detached with the root alive"));
            };
            if p == self.root {
                if d != 0 || peer.parent().is_some() {
                    return Err(format!(
                        "root {p} has depth {d} / parent {:?}",
                        peer.parent()
                    ));
                }
                continue;
            }
            if d == 0 {
                return Err(format!("non-root peer {p} claims depth 0"));
            }
            let Some(q) = peer.parent() else {
                return Err(format!("peer {p} has depth {d} but no parent"));
            };
            if !world.is_up(q) {
                return Err(format!("peer {p}'s parent {q} is dead"));
            }
            if !self.topology.neighbors(p).contains(&q) {
                return Err(format!("peer {p}'s parent {q} is not an overlay neighbor"));
            }
            let pd = world
                .peer(q)
                .depth()
                .ok_or_else(|| format!("peer {p}'s parent {q} is detached"))?;
            if pd + 1 != d {
                return Err(format!(
                    "depth mismatch: peer {p} at depth {d} under parent {q} at depth {pd}"
                ));
            }
            *slot = Some(q);
        }
        // Depth consistency makes parent chains strictly descend to the
        // unique depth-0 peer, so this cannot panic on a cycle. Structural
        // check only: repair re-attaches along whatever live edge is
        // available first, so post-crash depths are consistent but not
        // BFS-minimal, and edge membership was already checked above.
        let snapshot = Hierarchy::from_parents(self.root, &parents);
        snapshot.check_invariants(None);
        Ok(())
    }
}

/// Epoch-fence monotonicity: no peer's served epoch ever regresses.
#[derive(Debug, Default)]
pub struct EpochFenceOracle {
    last: Vec<u64>,
}

impl EpochFenceOracle {
    /// Creates the oracle with no epochs observed yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Oracle<Des<ResilientProtocol>> for EpochFenceOracle {
    fn name(&self) -> &'static str {
        "epoch-fence"
    }

    fn check(
        &mut self,
        world: &World<Des<ResilientProtocol>>,
        _at: Checkpoint,
    ) -> Result<(), String> {
        if self.last.is_empty() {
            self.last = vec![0; world.peer_count()];
        }
        for (i, peer) in world.peers().enumerate() {
            let e = peer.epoch();
            if e < self.last[i] {
                return Err(format!("peer {i} epoch regressed {} -> {e}", self.last[i]));
            }
            self.last[i] = e;
        }
        Ok(())
    }
}

/// Answer non-inflation: no completed epoch, complete *or* partial, may
/// report an item above its true global value. Double-merging a
/// duplicated aggregation frame violates this immediately, even though
/// the inflated census demotes the epoch's certificate to `Partial`.
#[derive(Debug)]
pub struct NoInflationOracle {
    /// The ground-truth fold of the workload.
    pub truth: GroundTruth,
}

impl Oracle<Des<ResilientProtocol>> for NoInflationOracle {
    fn name(&self) -> &'static str {
        "no-inflation"
    }

    fn check(
        &mut self,
        world: &World<Des<ResilientProtocol>>,
        _at: Checkpoint,
    ) -> Result<(), String> {
        for (i, peer) in world.peers().enumerate() {
            for er in peer.completed_epochs() {
                for &(item, v) in &er.answer {
                    let t = self.truth.value_of(item);
                    if v > t {
                        return Err(format!(
                            "peer {i} epoch {}: item {item:?} reported {v} > true value {t}",
                            er.epoch
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Certificate soundness: an epoch certified `Complete` must equal the
/// exact IFI over the full roster — the certified answer, the whole
/// answer, and nothing but the answer.
#[derive(Debug)]
pub struct CensusSoundnessOracle {
    /// The exact IFI answer over the full peer set.
    pub expected: Vec<(ItemId, u64)>,
}

impl Oracle<Des<ResilientProtocol>> for CensusSoundnessOracle {
    fn name(&self) -> &'static str {
        "census-soundness"
    }

    fn check(
        &mut self,
        world: &World<Des<ResilientProtocol>>,
        _at: Checkpoint,
    ) -> Result<(), String> {
        for (i, peer) in world.peers().enumerate() {
            for er in peer.completed_epochs() {
                if er.is_complete() && er.answer != self.expected {
                    let got: BTreeMap<ItemId, u64> = er.answer.iter().copied().collect();
                    let want: BTreeMap<ItemId, u64> = self.expected.iter().copied().collect();
                    let diff = got
                        .iter()
                        .find(|(k, v)| want.get(k) != Some(v))
                        .map(|(k, v)| format!("item {k:?} reported {v}"))
                        .unwrap_or_else(|| "an expected item is missing".into());
                    return Err(format!(
                        "peer {i} epoch {} certified Complete but diverges from ground truth: {diff}",
                        er.epoch
                    ));
                }
            }
        }
        Ok(())
    }
}

/// ε-bound accuracy of the sketch-merge engine: every reported estimate
/// must sit within `⌈ε·V⌉` of the exact global value (and never above
/// it — the deficit form only undercounts), and no truly frequent item
/// may be missing from the answer. An engine whose capacity cannot honor
/// its claimed ε violates one of the two immediately.
#[derive(Debug)]
pub struct EpsilonBoundOracle {
    /// The query root.
    pub root: PeerId,
    /// The ground-truth fold of the workload.
    pub truth: GroundTruth,
    /// The resolved frequency threshold `t`.
    pub threshold: u64,
    /// The ε the engine claims.
    pub claimed_epsilon: f64,
}

impl Oracle<Des<SketchProtocol>> for EpsilonBoundOracle {
    fn name(&self) -> &'static str {
        "epsilon-bound"
    }

    fn check(&mut self, world: &World<Des<SketchProtocol>>, at: Checkpoint) -> Result<(), String> {
        if at != Checkpoint::End {
            return Ok(());
        }
        let Some(answer) = world.peer(self.root).result() else {
            return Err("root never produced a summary answer".into());
        };
        let bound = (self.claimed_epsilon * self.truth.total_value() as f64).ceil() as u64;
        for &(item, est) in &answer.items {
            let exact = self.truth.value_of(item);
            if est > exact {
                return Err(format!(
                    "item {item:?} estimated {est} above its true value {exact}"
                ));
            }
            if exact - est > bound {
                return Err(format!(
                    "item {item:?} estimated {est}, true value {exact}: deficit {} exceeds the claimed \
                     bound {bound}",
                    exact - est
                ));
            }
        }
        for &(item, v) in self.truth.globals() {
            if v < self.threshold {
                break; // globals are sorted descending
            }
            if !answer.items.iter().any(|&(i, _)| i == item) {
                return Err(format!(
                    "frequent item {item:?} (value {v} ≥ t = {}) missing from the answer",
                    self.threshold
                ));
            }
        }
        Ok(())
    }
}

/// Top-k recall: the returned values must be exact, the returned set must
/// contain at least the claimed fraction of the true top-k, and a
/// `certified` answer must equal the true prefix outright.
#[derive(Debug)]
pub struct TopKRecallOracle {
    /// The query root.
    pub root: PeerId,
    /// The ground-truth fold of the workload.
    pub truth: GroundTruth,
    /// The true top-k prefix (ties broken like the engine: value
    /// descending, then id ascending).
    pub expected: Vec<(ItemId, u64)>,
    /// The recall the engine's tuning claims.
    pub claimed_recall: f64,
}

impl Oracle<Des<TopKProtocol>> for TopKRecallOracle {
    fn name(&self) -> &'static str {
        "topk-recall"
    }

    fn check(&mut self, world: &World<Des<TopKProtocol>>, at: Checkpoint) -> Result<(), String> {
        if at != Checkpoint::End {
            return Ok(());
        }
        let Some(answer) = world.peer(self.root).result() else {
            return Err("root never produced a top-k answer".into());
        };
        for &(item, v) in &answer.items {
            let exact = self.truth.value_of(item);
            if v != exact {
                return Err(format!(
                    "item {item:?} reported {v} but its true value is {exact}"
                ));
            }
        }
        if answer.certified && answer.items != self.expected {
            return Err(format!(
                "certified answer diverges from the true top-k: {} items reported, {} expected",
                answer.items.len(),
                self.expected.len()
            ));
        }
        if !self.expected.is_empty() {
            let hit = answer
                .items
                .iter()
                .filter(|(i, _)| self.expected.iter().any(|&(e, _)| e == *i))
                .count();
            let recall = hit as f64 / self.expected.len() as f64;
            if recall + 1e-9 < self.claimed_recall {
                return Err(format!(
                    "recall {recall:.3} ({hit}/{}) below the claimed {:.3}",
                    self.expected.len(),
                    self.claimed_recall
                ));
            }
        }
        Ok(())
    }
}

/// Window consistency of the continuous standing-query engine: every
/// epoch answer the root certifies must equal — query by query, row by
/// row — the answer a from-scratch windowed aggregation over the same
/// per-epoch schedules gives at that fence, and by the end of the run
/// every configured epoch must have certified. Dropping retirement diffs
/// (the planted `with_dropped_retirements` bug) inflates the standing
/// state the moment the window fills and violates this immediately.
///
/// Only meaningful for the unfaded engine ([`FadePolicy::None`]): under a
/// fade policy answer membership is decided by faded values the
/// from-scratch comparator does not model.
///
/// [`FadePolicy::None`]: netfilter::continuous::FadePolicy::None
#[derive(Debug, Clone)]
pub struct WindowConsistencyOracle {
    /// The query root.
    pub root: PeerId,
    /// Every peer's per-epoch record batches — the ground-truth input.
    pub schedules: Vec<Vec<Vec<(ItemId, u64)>>>,
    /// The window size `W` in buckets.
    pub window: usize,
    /// The configured epoch count: all must certify by the end.
    pub epochs: usize,
    /// The registered query thresholds, in registry order.
    pub thresholds: Vec<u64>,
}

impl Oracle<Des<ContinuousProtocol>> for WindowConsistencyOracle {
    fn name(&self) -> &'static str {
        "window-consistency"
    }

    fn check(
        &mut self,
        world: &World<Des<ContinuousProtocol>>,
        at: Checkpoint,
    ) -> Result<(), String> {
        let history = world.peer(self.root).history();
        if at == Checkpoint::End && history.len() != self.epochs {
            return Err(format!(
                "only {} of {} epochs certified by the end of the run",
                history.len(),
                self.epochs
            ));
        }
        for ans in history {
            if ans.contributors != self.schedules.len() {
                return Err(format!(
                    "epoch {} certified with {} contributors, roster holds {}",
                    ans.epoch,
                    ans.contributors,
                    self.schedules.len()
                ));
            }
            if ans.answers.len() != self.thresholds.len() {
                return Err(format!(
                    "epoch {}: {} query answers for {} registered queries",
                    ans.epoch,
                    ans.answers.len(),
                    self.thresholds.len()
                ));
            }
            let scratch = window_totals_from_scratch(&self.schedules, ans.epoch, self.window);
            for (qi, &t) in self.thresholds.iter().enumerate() {
                let mut want: Vec<(ItemId, u64)> = scratch
                    .iter()
                    .filter(|&(_, v)| *v >= t)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                want.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let got = &ans.answers[qi].items;
                if got != &want {
                    let diff = got
                        .iter()
                        .find(|row| !want.contains(row))
                        .or_else(|| want.iter().find(|row| !got.contains(row)))
                        .map(|(k, v)| format!("item {k:?} at value {v}"))
                        .unwrap_or_else(|| "row order".into());
                    return Err(format!(
                        "epoch {} query {qi} (t = {t}) diverges from the from-scratch \
                         window: {} rows reported, {} expected; first diff: {diff}",
                        ans.epoch,
                        got.len(),
                        want.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One-sided soundness of the local-thresholding comparator: at no point
/// may the root answer *yes* ("`v_x ≥ t`") while the truth sits below
/// `t`, and its running lower bound may never exceed the true value
/// (double-counting a relayed report violates this first).
#[derive(Debug)]
pub struct ThresholdSoundnessOracle {
    /// The query root.
    pub root: PeerId,
    /// The item's true global value.
    pub truth_value: u64,
}

impl Oracle<Des<LocalThresholdProtocol>> for ThresholdSoundnessOracle {
    fn name(&self) -> &'static str {
        "threshold-soundness"
    }

    fn check(
        &mut self,
        world: &World<Des<LocalThresholdProtocol>>,
        _at: Checkpoint,
    ) -> Result<(), String> {
        let v = world.peer(self.root).verdict();
        if v.lower_bound > self.truth_value {
            return Err(format!(
                "lower bound {} exceeds the true value {}",
                v.lower_bound, self.truth_value
            ));
        }
        if v.answer && self.truth_value < v.threshold {
            return Err(format!(
                "root answered yes at t = {} but the true value is {}",
                v.threshold, self.truth_value
            ));
        }
        Ok(())
    }
}
