//! The continuous-engine case registry: standing queries under
//! exploration.
//!
//! The continuous engine promises that its delta-maintained standing
//! answer is *indistinguishable* from re-running a windowed aggregation
//! from scratch at every epoch fence — across message loss, duplication,
//! schedule perturbation, and a mid-run kill/revive of a leaf whose
//! buffered deltas the tree must absorb late. This registry holds that
//! promise to the [`WindowConsistencyOracle`]:
//!
//! * `continuous-clean`: nine peers, a three-bucket window over six epoch
//!   fences, **two** standing queries multiplexed over the shared delta
//!   stream, the reliability envelope on every hop, probabilistic loss
//!   and duplication plus scheduled drops, and the usual leaf churn.
//!   Every certified epoch must match the from-scratch window for both
//!   queries on every schedule, and all six epochs must certify.
//! * `bug-continuous-dropped-retirements`: the `#[doc(hidden)]` toggle
//!   that makes the root ignore retirement (negative) diffs — the
//!   standing state stops aging out and overcounts the moment the window
//!   fills, so the oracle must fire on the unperturbed schedule already.
//!
//! Like [`crate::approx`], this registry is deliberately separate from
//! [`crate::cases::all_cases`] (whose shape the exact-suite accounting
//! pins); the bench continuous smoke and the `experiments
//! continuous-smoke` subcommand drive it.
//!
//! [`WindowConsistencyOracle`]: crate::oracle::WindowConsistencyOracle

use ifi_hierarchy::Hierarchy;
use ifi_sim::{sansio_world, Des, Duration, FaultPlan, PeerId, RelConfig, SimConfig, SimTime};
use netfilter::continuous::{
    schedule_from_data, ContinuousConfig, ContinuousProtocol, QueryRegistry, StandingQuery,
};

use crate::cases::{make_case, workload, Case};
use crate::explore::ExploreConfig;
use crate::oracle::{Oracle, WindowConsistencyOracle};

/// The leaf the clean case kills mid-run and revives later: under
/// `Hierarchy::balanced(9, 3)` peer 8 reports to peer 2. Its remaining
/// fences run after revival, so certification of the affected epochs is
/// late but must still be exact.
const CHURNED_LEAF: usize = 8;

/// Window size in buckets: after a fence the live window holds the last
/// two full epoch batches.
const WINDOW: usize = 3;

/// Epoch fences per run — enough for the window to fill and age twice.
const EPOCHS: usize = 6;

fn kill_at() -> SimTime {
    SimTime::from_micros(250_000)
}

fn revive_at() -> SimTime {
    SimTime::from_micros(1_500_000)
}

fn clean_budget(seed: u64) -> ExploreConfig {
    ExploreConfig {
        seed,
        trials: 60,
        check_every: Duration::from_secs(1),
        horizon: None,
        drops_per_trial: 2,
        drop_seq_horizon: 200,
        shrink_budget: 300,
        ..ExploreConfig::default()
    }
}

fn negative_budget(seed: u64) -> ExploreConfig {
    ExploreConfig {
        seed,
        trials: 60,
        check_every: Duration::from_secs(1),
        horizon: None,
        drops_per_trial: 0,
        drop_seq_horizon: 200,
        shrink_budget: 200,
        ..ExploreConfig::default()
    }
}

fn faulty_sim(seed: u64, drops: &[u64]) -> SimConfig {
    SimConfig::default().with_seed(seed).with_faults(
        FaultPlan::none()
            .with_drop(0.05)
            .with_duplication(0.05)
            .with_scheduled_drops(drops.iter().copied()),
    )
}

/// Two standing queries sharing the delta stream, both streamed to the
/// churned leaf (the deepest subscriber).
fn registry() -> QueryRegistry {
    let mut r = QueryRegistry::new();
    r.register(StandingQuery {
        id: 0,
        threshold: 30,
        subscriber: PeerId::new(CHURNED_LEAF),
    });
    r.register(StandingQuery {
        id: 1,
        threshold: 60,
        subscriber: PeerId::new(CHURNED_LEAF),
    });
    r
}

fn oracle(
    root: PeerId,
    schedules: &[Vec<Vec<(ifi_workload::ItemId, u64)>>],
    reg: &QueryRegistry,
) -> WindowConsistencyOracle {
    WindowConsistencyOracle {
        root,
        schedules: schedules.to_vec(),
        window: WINDOW,
        epochs: EPOCHS,
        thresholds: reg.queries().iter().map(|q| q.threshold).collect(),
    }
}

/// The honest continuous engine under loss, duplication, scheduled drops,
/// and leaf churn: window consistency must hold on every schedule.
fn continuous_clean(seed: u64) -> Case {
    let data = workload(seed);
    let schedules = schedule_from_data(&data, EPOCHS);
    let h = Hierarchy::balanced(9, 3);
    let cfg = ContinuousConfig::new(WINDOW, EPOCHS);
    let reg = registry();
    let root = h.root();
    let ora = oracle(root, &schedules, &reg);
    let build = move |drops: &[u64]| {
        let mut w = ContinuousProtocol::build_world_reliable(
            &cfg,
            &h,
            &reg,
            &schedules,
            faulty_sim(seed, drops),
            RelConfig::default(),
        );
        w.schedule_kill(kill_at(), PeerId::new(CHURNED_LEAF));
        w.schedule_revive(revive_at(), PeerId::new(CHURNED_LEAF));
        w.enable_trace(64);
        w
    };
    let oracles =
        move || -> Vec<Box<dyn Oracle<Des<ContinuousProtocol>>>> { vec![Box::new(ora.clone())] };
    make_case(
        "continuous-clean",
        "continuous",
        None,
        clean_budget(seed),
        build,
        oracles,
    )
}

/// The planted retirement-dropping bug: the root ignores negative diffs,
/// so from the first fence where a batch retires (epoch `W − 1 = 2`) the
/// standing state overcounts and the oracle must fire — on the
/// unperturbed schedule, at trial 0.
fn continuous_dropped_retirements(seed: u64) -> Case {
    let data = workload(seed);
    let schedules = schedule_from_data(&data, EPOCHS);
    let h = Hierarchy::balanced(9, 3);
    let cfg = ContinuousConfig::new(WINDOW, EPOCHS);
    let reg = registry();
    let root = h.root();
    let ora = oracle(root, &schedules, &reg);
    let build = move |drops: &[u64]| {
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        let cores: Vec<ContinuousProtocol> =
            ContinuousProtocol::peers(&cfg, &h, &reg, &schedules, Some(RelConfig::default()))
                .into_iter()
                .map(ContinuousProtocol::with_dropped_retirements)
                .collect();
        let mut w = sansio_world(sim, cores);
        w.enable_trace(64);
        w
    };
    let oracles =
        move || -> Vec<Box<dyn Oracle<Des<ContinuousProtocol>>>> { vec![Box::new(ora.clone())] };
    make_case(
        "bug-continuous-dropped-retirements",
        "continuous",
        Some("window-consistency"),
        negative_budget(seed),
        build,
        oracles,
    )
}

/// The continuous-engine registry for one seed: one clean case, one
/// planted negative.
pub fn continuous_cases(seed: u64) -> Vec<Case> {
    vec![continuous_clean(seed), continuous_dropped_retirements(seed)]
}

/// Looks a continuous case up by name (used by the replay subcommand).
pub fn find_continuous_case(name: &str, seed: u64) -> Option<Case> {
    continuous_cases(seed).into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64, trials: usize) -> ExploreConfig {
        ExploreConfig {
            trials,
            ..clean_budget(seed)
        }
    }

    #[test]
    fn registry_names_are_unique_and_expectations_partition() {
        let cases = continuous_cases(1);
        assert_eq!(cases.len(), 2);
        let names: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 2);
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.expect_violation.is_none())
                .count(),
            1,
            "one clean case"
        );
        assert!(cases.iter().all(|c| c.protocol == "continuous"));
        assert!(find_continuous_case("continuous-clean", 1).is_some());
        assert!(find_continuous_case("no-such-case", 1).is_none());
    }

    #[test]
    fn clean_case_holds_on_a_handful_of_schedules() {
        let case = find_continuous_case("continuous-clean", 11).unwrap();
        let report = case.explore_with(&quick(11, 6));
        assert!(
            report.violation.is_none(),
            "continuous-clean violated: {:?}",
            report.violation
        );
        assert!(report.distinct_schedules >= 2, "never diverged");
    }

    /// The planted negative fires on its very first (unperturbed)
    /// schedule, names the window-consistency oracle, shrinks, and
    /// replays.
    #[test]
    fn dropped_retirements_fire_shrink_and_replay() {
        let case = find_continuous_case("bug-continuous-dropped-retirements", 7).unwrap();
        let report = case.explore_with(&quick(7, 3));
        let found = report.violation.expect("planted bug did not fire");
        assert_eq!(found.violation.oracle, "window-consistency");
        assert_eq!(found.trial, 0, "needed perturbation to fire");
        let again = case.replay(&found.shrunk).expect("shrunk repro went quiet");
        assert_eq!(again.oracle, "window-consistency");
    }
}
