//! The trial loop: run many perturbed schedules against a case's oracles.
//!
//! Trial 0 always runs the unperturbed schedule (the plain seeded run the
//! rest of the suite sees); subsequent trials install a fresh
//! [`RandomStrategy`] stream and a fresh set of scheduled message drops.
//! Every trial's schedule fingerprint is collected, so a case can assert
//! genuinely distinct interleavings were explored. The first violation —
//! an oracle `Err` or a captured handler panic — stops the loop and is
//! shrunk to a minimal replayable perturbation.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use ifi_sim::{DetRng, Duration, Protocol, ScheduleDecision, ScheduleStrategy, SimTime, World};

use crate::oracle::{Checkpoint, Oracle, Violation};
use crate::strategy::{DecisionLog, RandomStrategy, ReplayStrategy, StrategyKnobs};

/// The stream id the explorer derives its per-trial rngs from.
const SIMCHECK_STREAM: u64 = 0x51c4_ec05;

/// How many trailing trace entries a violation carries into its artifact.
const TRACE_WINDOW: usize = 24;

/// One trial's complete deviation from the default schedule: the logged
/// strategy decisions plus any scheduled kernel-sequence drops composed
/// into the world's fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Perturbation {
    /// `(consultation index, decision)` pairs, ascending.
    pub decisions: Vec<(u64, ScheduleDecision)>,
    /// Kernel send-sequence numbers dropped on the wire.
    pub extra_drops: Vec<u64>,
}

impl Perturbation {
    /// Whether this is the unperturbed schedule.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty() && self.extra_drops.is_empty()
    }

    /// Number of atomic perturbation elements (shrinking units).
    pub fn len(&self) -> usize {
        self.decisions.len() + self.extra_drops.len()
    }
}

/// Parameters of one exploration campaign.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Base seed; trial rngs and world seeds derive from it.
    pub seed: u64,
    /// Number of schedules to try (including the unperturbed trial 0).
    pub trials: usize,
    /// Sim-time between interval oracle checkpoints.
    pub check_every: Duration,
    /// Stop time for protocols that never quiesce (`None` = run to
    /// quiescence; required for worlds with periodic timers).
    pub horizon: Option<SimTime>,
    /// Scheduled message drops per perturbed trial.
    pub drops_per_trial: usize,
    /// Drop sequence numbers are drawn from `1..=drop_seq_horizon`.
    pub drop_seq_horizon: u64,
    /// Random-strategy tuning.
    pub knobs: StrategyKnobs,
    /// Maximum replays the shrinker may spend minimizing a violation.
    pub shrink_budget: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 0,
            trials: 60,
            check_every: Duration::from_secs(1),
            horizon: None,
            drops_per_trial: 0,
            drop_seq_horizon: 400,
            knobs: StrategyKnobs::default(),
            shrink_budget: 400,
        }
    }
}

/// A violation found by [`explore`], with its original and shrunk repro.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// The trial index the violation first surfaced in.
    pub trial: usize,
    /// The violation as first observed.
    pub violation: Violation,
    /// The full perturbation of the violating trial.
    pub perturbation: Perturbation,
    /// The greedily minimized perturbation (replay-verified).
    pub shrunk: Perturbation,
    /// The violation the shrunk perturbation reproduces.
    pub shrunk_violation: Violation,
}

/// Outcome of an exploration campaign.
#[derive(Debug)]
pub struct ExploreReport {
    /// Trials actually run (short of `config.trials` iff a violation
    /// stopped the campaign).
    pub trials_run: usize,
    /// Distinct schedule fingerprints observed across completed trials.
    pub distinct_schedules: usize,
    /// The first violation, if any, with its shrunk repro.
    pub violation: Option<FoundViolation>,
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Silences the default panic hook for the guard's lifetime, restoring
/// the previous hook on drop. Exploration of the pinned bug cases
/// provokes hundreds of expected panics; printing each backtrace would
/// drown the real output.
struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(h) = self.prev.take() {
            std::panic::set_hook(h);
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one trial: build the world (with `drops` composed into its fault
/// plan), install `strategy`, drive to quiescence or the horizon with
/// interval checkpoints, then run the end checkpoint. Returns the
/// schedule fingerprint on success.
pub fn run_one<P: Protocol>(
    build: &dyn Fn(&[u64]) -> World<P>,
    oracles: &dyn Fn() -> Vec<Box<dyn Oracle<P>>>,
    cfg: &ExploreConfig,
    strategy: Option<Box<dyn ScheduleStrategy>>,
    drops: &[u64],
) -> Result<u64, Violation> {
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut world = build(drops);
        if let Some(s) = strategy {
            world.install_strategy(s);
        }
        world.start();
        let mut oracles = oracles();
        let fail = |world: &World<P>, oracle: &'static str, detail: String| Violation {
            oracle: oracle.into(),
            detail,
            trace: world
                .trace()
                .map(|t| {
                    let skip = t.len().saturating_sub(TRACE_WINDOW);
                    t.entries().skip(skip).map(|e| format!("{e:?}")).collect()
                })
                .unwrap_or_default(),
        };
        while let Some(next) = world.next_event_time() {
            if cfg.horizon.is_some_and(|h| next > h) {
                break;
            }
            let mut target = world.now() + cfg.check_every;
            if let Some(h) = cfg.horizon {
                target = target.min(h);
            }
            world.run_until(target);
            for o in oracles.iter_mut() {
                if let Err(detail) = o.check(&world, Checkpoint::Interval) {
                    return Err(fail(&world, o.name(), detail));
                }
            }
        }
        if let Some(h) = cfg.horizon {
            world.run_until(h);
        }
        for o in oracles.iter_mut() {
            if let Err(detail) = o.check(&world, Checkpoint::End) {
                return Err(fail(&world, o.name(), detail));
            }
        }
        Ok(world.schedule_fingerprint())
    }));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(Violation {
            oracle: "panic".into(),
            detail: panic_text(payload),
            trace: Vec::new(),
        }),
    }
}

fn gen_drops(rng: &mut DetRng, cfg: &ExploreConfig) -> Vec<u64> {
    let mut drops = BTreeSet::new();
    let limit = cfg.drops_per_trial.min(cfg.drop_seq_horizon as usize);
    while drops.len() < limit {
        drops.insert(rng.range_inclusive(1, cfg.drop_seq_horizon));
    }
    drops.into_iter().collect()
}

/// Explores `cfg.trials` schedules; stops and shrinks at the first
/// violation.
pub fn explore<P: Protocol>(
    cfg: &ExploreConfig,
    build: &dyn Fn(&[u64]) -> World<P>,
    oracles: &dyn Fn() -> Vec<Box<dyn Oracle<P>>>,
) -> ExploreReport {
    let _quiet = QuietPanics::install();
    let mut fingerprints = BTreeSet::new();
    let base = DetRng::new(cfg.seed).derive(SIMCHECK_STREAM);
    for trial in 0..cfg.trials {
        let mut trial_rng = base.derive(trial as u64);
        let log: DecisionLog = Rc::new(RefCell::new(Vec::new()));
        let (strategy, drops): (Option<Box<dyn ScheduleStrategy>>, Vec<u64>) = if trial == 0 {
            // Trial 0 is the unperturbed baseline every other test sees.
            (None, Vec::new())
        } else {
            let drops = gen_drops(&mut trial_rng, cfg);
            let s = RandomStrategy::new(trial_rng.derive(1), cfg.knobs, log.clone());
            (Some(Box::new(s)), drops)
        };
        match run_one(build, oracles, cfg, strategy, &drops) {
            Ok(fp) => {
                fingerprints.insert(fp);
            }
            Err(violation) => {
                let perturbation = Perturbation {
                    decisions: log.borrow().clone(),
                    extra_drops: drops,
                };
                let (shrunk, shrunk_violation) =
                    crate::shrink::shrink(cfg, build, oracles, &perturbation, violation.clone());
                return ExploreReport {
                    trials_run: trial + 1,
                    distinct_schedules: fingerprints.len(),
                    violation: Some(FoundViolation {
                        trial,
                        violation,
                        perturbation,
                        shrunk,
                        shrunk_violation,
                    }),
                };
            }
        }
    }
    ExploreReport {
        trials_run: cfg.trials,
        distinct_schedules: fingerprints.len(),
        violation: None,
    }
}

/// Replays a recorded perturbation exactly; returns the violation it
/// reproduces, or `None` if the run is clean.
pub fn replay<P: Protocol>(
    cfg: &ExploreConfig,
    build: &dyn Fn(&[u64]) -> World<P>,
    oracles: &dyn Fn() -> Vec<Box<dyn Oracle<P>>>,
    pert: &Perturbation,
) -> Option<Violation> {
    let _quiet = QuietPanics::install();
    let strategy = ReplayStrategy::new(pert.decisions.iter().copied());
    run_one(
        build,
        oracles,
        cfg,
        Some(Box::new(strategy)),
        &pert.extra_drops,
    )
    .err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifi_sim::{Ctx, FaultPlan, MsgClass, PeerId, SimConfig};

    /// A chatty ring: every peer forwards a hop counter around the ring a
    /// fixed number of times. Plenty of deliveries, then quiescence.
    #[derive(Debug, Clone)]
    struct Ring {
        n: usize,
        hops: u32,
    }

    impl Protocol for Ring {
        type Msg = u32;
        type Timer = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
            let next = PeerId::new((ctx.self_id().index() + 1) % self.n);
            ctx.send(next, self.hops, 16, MsgClass::CONTROL);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, _from: PeerId, msg: u32) {
            if msg > 0 {
                let next = PeerId::new((ctx.self_id().index() + 1) % self.n);
                ctx.send(next, msg - 1, 16, MsgClass::CONTROL);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _t: ()) {}
    }

    fn ring_world(seed: u64, drops: &[u64]) -> World<Ring> {
        let peers = (0..4).map(|_| Ring { n: 4, hops: 12 }).collect();
        let sim = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_scheduled_drops(drops.iter().copied()));
        World::new(sim, peers)
    }

    /// An oracle that tolerates anything except dropped messages — used
    /// to verify that shrinking peels a perturbation down to the drops.
    struct NoDrops;

    impl Oracle<Ring> for NoDrops {
        fn name(&self) -> &'static str {
            "no-drops"
        }

        fn check(&mut self, world: &World<Ring>, _at: Checkpoint) -> Result<(), String> {
            let d = world.metrics().dropped_messages();
            if d > 0 {
                Err(format!("{d} messages dropped"))
            } else {
                Ok(())
            }
        }
    }

    struct AlwaysOk;

    impl Oracle<Ring> for AlwaysOk {
        fn name(&self) -> &'static str {
            "always-ok"
        }

        fn check(&mut self, _world: &World<Ring>, _at: Checkpoint) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn exploration_visits_many_distinct_schedules() {
        let cfg = ExploreConfig {
            seed: 11,
            trials: 30,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg, &|drops| ring_world(11, drops), &|| {
            vec![Box::new(AlwaysOk) as Box<dyn Oracle<Ring>>]
        });
        assert!(report.violation.is_none());
        assert_eq!(report.trials_run, 30);
        assert!(
            report.distinct_schedules >= 25,
            "only {} distinct schedules in 30 trials",
            report.distinct_schedules
        );
    }

    #[test]
    fn violations_shrink_to_the_minimal_drop_and_replay() {
        let cfg = ExploreConfig {
            seed: 3,
            trials: 10,
            drops_per_trial: 3,
            drop_seq_horizon: 30,
            ..ExploreConfig::default()
        };
        let build = |drops: &[u64]| ring_world(3, drops);
        let oracles = || vec![Box::new(NoDrops) as Box<dyn Oracle<Ring>>];
        let report = explore(&cfg, &build, &oracles);
        let found = report.violation.expect("drops must violate the oracle");
        // Trial 0 is unperturbed, so the violation lands on trial 1.
        assert_eq!(found.trial, 1);
        assert_eq!(found.violation.oracle, "no-drops");
        // The minimal repro is one drop and zero strategy decisions.
        assert_eq!(found.shrunk.extra_drops.len(), 1);
        assert!(found.shrunk.decisions.is_empty());
        // And it replays.
        let v = replay(&cfg, &build, &oracles, &found.shrunk).expect("shrunk repro must re-fire");
        assert_eq!(v.oracle, "no-drops");
        assert_eq!(v.detail, "1 messages dropped");
    }

    #[test]
    fn replaying_the_empty_perturbation_matches_the_plain_run() {
        let mut w = ring_world(9, &[]);
        w.start();
        w.run_to_quiescence();
        let plain = w.schedule_fingerprint();

        let cfg = ExploreConfig {
            seed: 9,
            ..ExploreConfig::default()
        };
        let fp = run_one(
            &|drops| ring_world(9, drops),
            &|| vec![Box::new(AlwaysOk) as Box<dyn Oracle<Ring>>],
            &cfg,
            Some(Box::new(ReplayStrategy::new([]))),
            &[],
        )
        .expect("clean run");
        assert_eq!(fp, plain, "Take(0) replay must equal the plain schedule");
    }
}
