//! Scale check: every invariant oracle over `N = 10^4`-peer worlds.
//!
//! The explorer in [`crate::cases`] sweeps *small* worlds (9–25 peers)
//! across many perturbed schedules. This module is the complementary
//! axis: each protocol family runs **once**, at large `N`, on the
//! dense-arena state layout and timer-wheel event queue, and all six
//! invariant oracles are consulted — exactness and cost reconciliation
//! on a full netFilter epoch, tree well-formedness through a mid-run
//! crash, and epoch-fence / no-inflation / census-soundness across
//! periodic resilient epochs.
//!
//! CI's `scale` job runs the `#[ignore]`d `N = 10^4` test in release
//! mode (debug builds take minutes at this size):
//!
//! ```text
//! cargo test --release -p ifi-simcheck six_oracles_hold_at_n10000 -- --ignored
//! ```
//!
//! A small-`N` twin of the same harness runs in tier-1 so the plumbing
//! itself can never rot behind the ignore flag.

use ifi_hierarchy::{Hierarchy, MaintainProtocol};
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{sansio_world, DetRng, Duration, PeerId, SimConfig, SimTime};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::resilient::{ResilientConfig, ResilientProtocol};
use netfilter::{NetFilter, NetFilterConfig, Threshold};

use crate::oracle::{
    CensusSoundnessOracle, Checkpoint, CostOracle, EpochFenceOracle, ExactnessOracle,
    NoInflationOracle, Oracle, TreeOracle,
};

/// One oracle's verdict from the scale run.
#[derive(Debug)]
pub struct ScaleVerdict {
    /// The oracle's stable name (matches [`Oracle::name`]).
    pub oracle: &'static str,
    /// `Err(detail)` if the invariant was violated.
    pub result: Result<(), String>,
}

fn secs(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn hb() -> HeartbeatConfig {
    HeartbeatConfig {
        interval: Duration::from_millis(500),
        timeout: Duration::from_millis(1600),
        bytes: 8,
    }
}

/// Keeps the *first* violation: later checkpoints of a stateful oracle
/// can cascade from the first broken invariant, so only the first report
/// is diagnostic.
fn record(slot: &mut Result<(), String>, fresh: Result<(), String>) {
    if slot.is_ok() {
        *slot = fresh;
    }
}

/// Runs each protocol family once at `n` peers and consults all six
/// invariant oracles. The stateful resilient oracles are additionally
/// checked every 2 s of sim time, mirroring the explorer's interval
/// checkpoints.
pub fn run_scale_check(n: usize, seed: u64) -> Vec<ScaleVerdict> {
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 20_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let cfg = NetFilterConfig::builder()
        .filter_size(100)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    let mut verdicts = Vec::new();

    // netfilter family: one full epoch over the DES must be exact and
    // byte-reconciled against the instant engine.
    {
        let h = Hierarchy::balanced(n, 3);
        let instant = NetFilter::new(cfg.clone()).run(&h, &data);
        let mut exact = ExactnessOracle {
            root: h.root(),
            expected: instant.frequent_items().to_vec(),
        };
        let mut cost = CostOracle {
            cost: instant.cost().clone(),
        };
        let mut w =
            NetFilterProtocol::build_world(&cfg, &h, &data, SimConfig::default().with_seed(seed));
        w.enable_metrics_sink();
        w.start();
        w.run_to_quiescence();
        verdicts.push(ScaleVerdict {
            oracle: "exactness",
            result: exact.check(&w, Checkpoint::End),
        });
        verdicts.push(ScaleVerdict {
            oracle: "cost-reconcile",
            result: cost.check(&w, Checkpoint::End),
        });
    }

    // maintain family: repair through a mid-run interior crash; the
    // survivors must form a well-formed tree at the horizon.
    {
        let topo = Topology::random_regular(n, 4, &mut DetRng::new(seed));
        let h = Hierarchy::bfs(&topo, PeerId::new(0));
        let peers: Vec<MaintainProtocol> = (0..n)
            .map(|i| {
                let p = PeerId::new(i);
                MaintainProtocol::new(&h, p, topo.neighbors(p).to_vec(), hb())
            })
            .collect();
        let mut w = sansio_world(SimConfig::default().with_seed(seed), peers);
        w.schedule_kill(secs(5), PeerId::new(7));
        w.start();
        w.run_until(secs(20));
        let mut tree = TreeOracle {
            topology: topo,
            root: PeerId::new(0),
        };
        verdicts.push(ScaleVerdict {
            oracle: "tree",
            result: tree.check(&w, Checkpoint::End),
        });
    }

    // resilient family: periodic epochs; the fence, inflation, and
    // census oracles watch every interval checkpoint plus the horizon.
    {
        let topo = Topology::random_regular(n, 5, &mut DetRng::new(seed ^ 0x5ca1e));
        let h = Hierarchy::bfs(&topo, PeerId::new(0));
        let truth = GroundTruth::compute(&data);
        let expected = truth.frequent_items(cfg.threshold.resolve(data.total_value()));
        let rc = ResilientConfig {
            heartbeat: hb(),
            query_period: Duration::from_secs(4),
            epoch_timeout: Duration::from_secs(12),
            takeover_grace: Duration::from_secs(4),
            takeover_stagger: Duration::from_secs(3),
        };
        let mut w = ResilientProtocol::build_world(
            &cfg,
            rc,
            &topo,
            &h,
            &data,
            SimConfig::default().with_seed(seed),
        );
        w.start();
        let mut fence = EpochFenceOracle::new();
        let mut inflation = NoInflationOracle { truth };
        let mut census = CensusSoundnessOracle { expected };
        let (mut fence_r, mut inflation_r, mut census_r) = (Ok(()), Ok(()), Ok(()));
        const HORIZON_S: u64 = 14;
        for t in (2..=HORIZON_S).step_by(2) {
            w.run_until(secs(t));
            let at = if t == HORIZON_S {
                Checkpoint::End
            } else {
                Checkpoint::Interval
            };
            record(&mut fence_r, fence.check(&w, at));
            record(&mut inflation_r, inflation.check(&w, at));
            record(&mut census_r, census.check(&w, at));
        }
        verdicts.push(ScaleVerdict {
            oracle: "epoch-fence",
            result: fence_r,
        });
        verdicts.push(ScaleVerdict {
            oracle: "no-inflation",
            result: inflation_r,
        });
        verdicts.push(ScaleVerdict {
            oracle: "census-soundness",
            result: census_r,
        });
    }

    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_all_pass(verdicts: Vec<ScaleVerdict>) {
        assert_eq!(verdicts.len(), 6);
        let names: Vec<&str> = verdicts.iter().map(|v| v.oracle).collect();
        assert_eq!(
            names,
            [
                "exactness",
                "cost-reconcile",
                "tree",
                "epoch-fence",
                "no-inflation",
                "census-soundness"
            ]
        );
        for v in verdicts {
            assert!(v.result.is_ok(), "{}: {:?}", v.oracle, v.result);
        }
    }

    /// Tier-1-speed twin of the scale gate: same harness, small `N`.
    #[test]
    fn six_oracles_hold_at_n500() {
        assert_all_pass(run_scale_check(500, 20080617));
    }

    /// The scale lane's gate (see module docs for the release-mode
    /// invocation CI uses).
    #[test]
    #[ignore = "N = 10^4 takes minutes in debug; CI runs it with --release"]
    fn six_oracles_hold_at_n10000() {
        assert_all_pass(run_scale_check(10_000, 20080617));
    }
}
