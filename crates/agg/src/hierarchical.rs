//! Hierarchical (bottom-up) aggregate computation — §III-A.2.
//!
//! *"the peers corresponding to the leaf nodes propagate the corresponding
//! local values to their upstream neighbors. A peer representing an
//! internal node merges its own local value … with the values received from
//! its downstream neighbors, and then forwards the merged result to its
//! upstream neighbor. Eventually, the root node has the final aggregate."*
//!
//! Two interchangeable engines:
//!
//! * [`aggregate`] — instant post-order evaluation over a materialized
//!   [`Hierarchy`], charging each non-root member the encoded size of the
//!   merged value it forwards upward;
//! * [`ConvergecastProtocol`] — the same computation as a message-level DES
//!   protocol (leaves send on start; internal nodes count down their
//!   children). A property test in the `netfilter` crate asserts both
//!   engines report identical values *and* identical byte totals.

use ifi_hierarchy::Hierarchy;
use ifi_sim::{Ctx, MsgClass, PeerId, Protocol};

use crate::merge::Aggregate;
use crate::wire::WireSizes;

/// Result of one hierarchical aggregation.
#[derive(Debug, Clone)]
pub struct AggregationOutcome<A> {
    /// The aggregate accumulated at the root.
    pub root_value: A,
    /// Bytes each peer propagated upward (`0` for the root and
    /// non-members); indexed by peer id.
    pub bytes_per_peer: Vec<u64>,
}

impl<A> AggregationOutcome<A> {
    /// Total bytes propagated by all peers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_peer.iter().sum()
    }

    /// The paper's communication-cost metric: average bytes per peer, over
    /// all `n_peers` peers of the system.
    pub fn avg_bytes_per_peer(&self) -> f64 {
        if self.bytes_per_peer.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.bytes_per_peer.len() as f64
        }
    }
}

/// Computes the aggregate of `local(p)` over all members of `hierarchy`,
/// instantly, with exact byte accounting.
///
/// `local` is called exactly once per member, in post-order.
pub fn aggregate<A: Aggregate>(
    hierarchy: &Hierarchy,
    sizes: &WireSizes,
    mut local: impl FnMut(PeerId) -> A,
) -> AggregationOutcome<A> {
    let universe = hierarchy.universe();
    let mut bytes_per_peer = vec![0u64; universe];
    // acc[p] = the merged value of p's subtree, once all children are in.
    let mut acc: Vec<Option<A>> = (0..universe).map(|_| None).collect();
    for p in hierarchy.post_order() {
        let mut value = local(p);
        for &c in hierarchy.children(p) {
            let child_value = acc[c.index()]
                .take()
                .expect("post-order guarantees children are evaluated first");
            value.merge_owned(child_value);
        }
        if p != hierarchy.root() {
            // The peer forwards its merged subtree value upward.
            bytes_per_peer[p.index()] = value.encoded_bytes(sizes);
        }
        acc[p.index()] = Some(value);
    }
    let root_value = acc[hierarchy.root().index()]
        .take()
        .expect("root is evaluated last");
    AggregationOutcome {
        root_value,
        bytes_per_peer,
    }
}

/// Message-level convergecast on the DES.
///
/// Each peer is seeded with its local aggregate; leaves send upward as soon
/// as they start, internal peers forward once every child has reported.
/// The final aggregate rests at the root (see
/// [`ConvergecastProtocol::result`]).
#[derive(Debug, Clone)]
pub struct ConvergecastProtocol<A> {
    parent: Option<PeerId>,
    pending_children: usize,
    acc: Option<A>,
    sizes: WireSizes,
    is_root: bool,
    done: bool,
}

impl<A: Aggregate + 'static> ConvergecastProtocol<A> {
    /// Creates the per-peer state from the peer's position in `hierarchy`
    /// and its local aggregate value.
    pub fn new(hierarchy: &Hierarchy, peer: PeerId, sizes: WireSizes, local: A) -> Self {
        ConvergecastProtocol {
            parent: hierarchy.parent(peer),
            pending_children: hierarchy.children(peer).len(),
            acc: Some(local),
            sizes,
            is_root: hierarchy.root() == peer,
            done: false,
        }
    }

    /// The final aggregate (root only, after the run quiesces).
    pub fn result(&self) -> Option<&A> {
        if self.is_root && self.done {
            self.acc.as_ref()
        } else {
            None
        }
    }

    fn maybe_forward(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.pending_children > 0 || self.done {
            return;
        }
        self.done = true;
        if let Some(parent) = self.parent {
            let value = self.acc.take().expect("value present until forwarded");
            let bytes = value.encoded_bytes(&self.sizes);
            ctx.send(parent, value, bytes, MsgClass::AGGREGATION);
        }
        // The root keeps `acc` as the final answer.
    }
}

impl<A: Aggregate + 'static> Protocol for ConvergecastProtocol<A> {
    type Msg = A;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.maybe_forward(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, _from: PeerId, msg: A) {
        assert!(
            self.pending_children > 0,
            "received a child report after all children reported"
        );
        self.acc
            .as_mut()
            .expect("internal node still holds its accumulator")
            .merge_owned(msg);
        self.pending_children -= 1;
        self.maybe_forward(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _t: ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{MapSum, ScalarSum, VecSum};
    use ifi_overlay::Topology;
    use ifi_sim::{DetRng, SimConfig, World};
    use ifi_workload::ItemId;

    #[test]
    fn scalar_aggregate_sums_everything() {
        let h = Hierarchy::balanced(13, 3);
        let out = aggregate(&h, &WireSizes::default(), |p| ScalarSum(p.index() as u64));
        assert_eq!(out.root_value, ScalarSum((0..13).sum()));
        // Every non-root peer sends exactly 4 bytes.
        assert_eq!(out.total_bytes(), 12 * 4);
        assert_eq!(out.bytes_per_peer[0], 0, "root sends nothing");
    }

    #[test]
    fn vec_aggregate_is_elementwise() {
        let h = Hierarchy::balanced(4, 3);
        let out = aggregate(&h, &WireSizes::default(), |p| {
            let mut v = vec![0u64; 3];
            v[p.index() % 3] = 1;
            VecSum(v)
        });
        assert_eq!(out.root_value.0.iter().sum::<u64>(), 4);
        // Fixed-width: every non-root sends sa * 3 = 12 bytes.
        assert_eq!(out.total_bytes(), 3 * 12);
    }

    #[test]
    fn map_aggregate_bytes_grow_toward_root() {
        // Line 0-1-2-3 (root 0): peer 3 sends 1 entry, peer 2 sends 2, …
        let topo = Topology::line(4);
        let h = Hierarchy::bfs(&topo, PeerId::new(0));
        let out = aggregate(&h, &WireSizes::default(), |p| {
            MapSum::from_pairs([(ItemId(p.index() as u64), 1)])
        });
        assert_eq!(out.root_value.len(), 4);
        assert_eq!(out.bytes_per_peer, vec![0, 8 * 3, 8 * 2, 8]);
    }

    #[test]
    fn convergecast_matches_instant_engine() {
        let topo = Topology::random_regular(80, 4, &mut DetRng::new(3));
        let h = Hierarchy::bfs(&topo, PeerId::new(0));
        let sizes = WireSizes::default();

        let instant = aggregate(&h, &sizes, |p| {
            MapSum::from_pairs([(ItemId(p.index() as u64 % 7), p.index() as u64)])
        });

        let peers: Vec<ConvergecastProtocol<MapSum>> = (0..80)
            .map(|i| {
                let p = PeerId::new(i);
                ConvergecastProtocol::new(
                    &h,
                    p,
                    sizes,
                    MapSum::from_pairs([(ItemId(i as u64 % 7), i as u64)]),
                )
            })
            .collect();
        let mut w = World::new(SimConfig::default().with_seed(5), peers);
        w.start();
        w.run_to_quiescence();

        let root_result = w
            .peer(PeerId::new(0))
            .result()
            .expect("root must hold the final aggregate")
            .clone();
        assert_eq!(root_result, instant.root_value);
        assert_eq!(
            w.metrics().class_bytes(MsgClass::AGGREGATION),
            instant.total_bytes(),
            "DES and instant engines must charge identical bytes"
        );
    }

    #[test]
    fn convergecast_singleton_root_completes_immediately() {
        let h = Hierarchy::balanced(1, 3);
        let peers = vec![ConvergecastProtocol::new(
            &h,
            PeerId::new(0),
            WireSizes::default(),
            ScalarSum(42),
        )];
        let mut w = World::new(SimConfig::default(), peers);
        w.start();
        w.run_to_quiescence();
        assert_eq!(w.peer(PeerId::new(0)).result(), Some(&ScalarSum(42)));
        assert_eq!(w.metrics().total_bytes(), 0);
    }

    #[test]
    fn paper_v_and_n_cost_one_scalar_per_peer() {
        // §IV: "The aggregate computation for v and N … only need to
        // propagate one single value along the hierarchy."
        let h = Hierarchy::balanced(1000, 3);
        let out = aggregate(&h, &WireSizes::default(), |_| ScalarSum(1));
        assert_eq!(out.root_value, ScalarSum(1000)); // N
        assert_eq!(out.avg_bytes_per_peer(), 999.0 * 4.0 / 1000.0);
    }
}
