//! # ifi-agg — aggregate computation for P2P systems
//!
//! The paper's §III-A surveys two families of aggregate computation and
//! builds netFilter on the hierarchical one; this crate implements both,
//! plus the sampling machinery of §IV-E:
//!
//! * [`hierarchical`] — bottom-up ("convergecast") aggregation along a
//!   [`ifi_hierarchy::Hierarchy`]: an *instant* engine (post-order tree
//!   walk with exact per-peer byte accounting) and a message-level
//!   [`ConvergecastProtocol`] for the DES; both compute identical values
//!   and identical byte counts,
//! * [`gossip`] — push-sum gossip aggregation (the paper's discussed
//!   alternative, citing \[8]\[15]; it needs `O(log N)` rounds and yields
//!   approximate values — exactly the trade-off §III-A describes),
//! * [`sampling`] — random-branch sampling to estimate `v̄`, `v̄_light`,
//!   `n̂`, and `r̂` for optimal parameter tuning (§IV-E, Eq. 7–8).
//!
//! Aggregate *types* implement [`Aggregate`], which pairs the merge
//! operation with a wire-size model ([`WireSizes`], the paper's
//! `s_a`/`s_g`/`s_i` constants) so that communication cost is measured by
//! encoding real messages rather than plugging formulas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod hierarchical;
mod merge;
pub mod sampling;
mod wire;

pub use hierarchical::{AggregationOutcome, ConvergecastProtocol};
pub use merge::{Aggregate, MapSum, ScalarSum, VecSum};
pub use wire::WireSizes;
