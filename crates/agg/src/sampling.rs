//! Random-branch sampling for practical parameter tuning — §IV-E.
//!
//! To set `g` and `f` optimally, netFilter needs `v̄`, `v̄_light`, `n`, and
//! `r` (Eq. 3 and 6). The paper estimates them by sampling: *"randomly
//! select a few branches in the hierarchy … Each of the sampled peers
//! randomly selects some of the local items from its local item set, for
//! which the aggregates are collected from these sampled peers"*, then
//! scales the sampled aggregates by `v / Σ v'` (Eq. 7–8).
//!
//! The paper leaves the `n` and `r` estimators as "similar fashion"; our
//! concrete choices (documented in DESIGN.md):
//!
//! * `r̂` — the number of *scaled* sampled aggregates `v̂_i ≥ t`. Heavy
//!   items are spread over many peers, so they are present at the sampled
//!   peers with overwhelming probability and their scaled aggregates are
//!   nearly unbiased.
//! * `n̂` — an occupancy estimator: a sampled-peer fraction `ρ` sees an
//!   item of global value `w` with probability `1 − (1−ρ)^w`, so the
//!   number of distinct items visible at the sampled peers is
//!   `x_all ≈ n·(1−(1−ρ)^{v/n})`, which is monotone in `n` and solved by
//!   binary search.

use std::collections::{BTreeMap, BTreeSet};

use ifi_hierarchy::Hierarchy;
use ifi_sim::{DetRng, EventSink, MsgClass, PeerSet};
use ifi_workload::{ItemId, SystemData};

use crate::wire::WireSizes;

/// How much to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Number of random root-to-leaf branches whose peers are sampled.
    pub branches: usize,
    /// Local items each sampled peer contributes aggregates for.
    pub items_per_peer: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            branches: 4,
            items_per_peer: 200,
        }
    }
}

/// Estimates produced by one sampling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledStats {
    /// Eq. 8: mean of the scaled sampled aggregates, `Σ v̂_i / x`.
    pub v_bar_sampled: f64,
    /// Eq. 7: mean of the scaled sampled aggregates below `t`.
    pub v_light_bar: f64,
    /// Occupancy estimate of the number of distinct items `n`.
    pub n_hat: u64,
    /// Estimate of the number of heavy items `r`.
    pub r_hat: u64,
    /// Peers on the sampled branches.
    pub sampled_peers: usize,
    /// Distinct items whose aggregates were sampled (`x` in the paper).
    pub sampled_items: usize,
    /// Sampling traffic: each sampled peer ships `(id, value)` pairs for
    /// its selected items.
    pub bytes: u64,
}

impl SampledStats {
    /// Universe-average item value `v / n̂`, the `v̄` that Eq. 3 pairs with
    /// `v̄_light` (the paper's `v = n·v̄` identity).
    pub fn v_bar_universe(&self, total_value: u64) -> f64 {
        if self.n_hat == 0 {
            0.0
        } else {
            total_value as f64 / self.n_hat as f64
        }
    }
}

/// Runs the §IV-E sampling pass over `hierarchy` and `data`.
///
/// `t` is the absolute threshold (the paper assumes `v`, and hence
/// `t = φ·v`, is already known from a scalar aggregate computation).
///
/// # Panics
///
/// Panics if `config.branches == 0` or `items_per_peer == 0`.
pub fn estimate(
    hierarchy: &Hierarchy,
    data: &SystemData,
    t: u64,
    config: &SamplingConfig,
    sizes: &WireSizes,
    rng: &mut DetRng,
) -> SampledStats {
    estimate_with_sink(
        hierarchy,
        data,
        t,
        config,
        sizes,
        rng,
        &mut EventSink::disabled(),
    )
}

/// [`estimate`] that additionally charges each sampled peer's `(id,
/// value)` pairs into `sink` (class [`MsgClass::SAMPLING`]). Recording
/// draws no randomness, so the estimates are identical to the plain
/// variant.
///
/// # Panics
///
/// As [`estimate`]; additionally if an enabled `sink` was sized for a
/// different peer universe.
#[allow(clippy::too_many_arguments)]
pub fn estimate_with_sink(
    hierarchy: &Hierarchy,
    data: &SystemData,
    t: u64,
    config: &SamplingConfig,
    sizes: &WireSizes,
    rng: &mut DetRng,
    sink: &mut EventSink,
) -> SampledStats {
    assert!(config.branches > 0, "need at least one branch");
    assert!(config.items_per_peer > 0, "need at least one item per peer");
    let v = data.total_value();

    // 1. Sample peers: union of random root-to-leaf branches.
    let mut sampled = PeerSet::new();
    for _ in 0..config.branches {
        sampled.extend(hierarchy.random_branch(rng));
    }

    // 2. Each sampled peer randomly selects local items; the union is the
    //    sampled item set X.
    let mut selected: BTreeSet<ItemId> = BTreeSet::new();
    let mut bytes = 0u64;
    for p in sampled.iter() {
        let items = data.local_items(p);
        let k = config.items_per_peer.min(items.len());
        if k == 0 {
            continue;
        }
        for idx in rng.sample_indices(items.len(), k) {
            selected.insert(items[idx].0);
        }
        bytes += sizes.pair() * k as u64;
        sink.record(p, MsgClass::SAMPLING, sizes.pair() * k as u64);
    }

    // 3. Aggregates for X over the sampled peers only: v'_i.
    let mut partial: BTreeMap<ItemId, u64> = selected.iter().map(|&i| (i, 0)).collect();
    for p in sampled.iter() {
        for &(id, val) in data.local_items(p) {
            if let Some(acc) = partial.get_mut(&id) {
                *acc += val;
            }
        }
    }
    let sum_partial: u64 = partial.values().sum();
    let x = partial.len();

    // 4. Scale: v̂_i = v'_i · v / Σ v'_j   (§IV-E).
    let scale = if sum_partial == 0 {
        0.0
    } else {
        v as f64 / sum_partial as f64
    };
    let scaled: Vec<f64> = partial.values().map(|&w| w as f64 * scale).collect();

    let v_bar_sampled = if x == 0 {
        0.0
    } else {
        scaled.iter().sum::<f64>() / x as f64
    };
    let light: Vec<f64> = scaled.iter().copied().filter(|&w| w < t as f64).collect();
    let v_light_bar = if light.is_empty() {
        0.0
    } else {
        light.iter().sum::<f64>() / light.len() as f64
    };
    let r_hat = scaled.iter().filter(|&&w| w >= t as f64).count() as u64;

    // 5. Estimate n from the *full* item counts at the sampled peers: the
    //    occupancy solver assumes equal-valued items (exact for θ = 0), the
    //    Chao1 richness estimator handles skewed tails; take the larger of
    //    the two lower-bound-flavoured estimates.
    let mut abundance: BTreeMap<ItemId, u64> = BTreeMap::new();
    for p in sampled.iter() {
        for &(id, val) in data.local_items(p) {
            *abundance.entry(id).or_insert(0) += val;
        }
    }
    let x_all = abundance.len();
    let members = hierarchy.member_count().max(1);
    let rho = sampled.len() as f64 / members as f64;
    let occupancy = solve_occupancy(x_all as f64, rho, v as f64);
    let f1 = abundance.values().filter(|&&c| c == 1).count() as f64;
    let f2 = abundance.values().filter(|&&c| c == 2).count() as f64;
    let chao1 = if f2 > 0.0 {
        x_all as f64 + f1 * f1 / (2.0 * f2)
    } else {
        x_all as f64 + f1 * (f1 - 1.0) / 2.0 // bias-corrected form at F2 = 0
    };
    let n_hat = occupancy.max(chao1.round() as u64);

    SampledStats {
        v_bar_sampled,
        v_light_bar,
        n_hat,
        r_hat,
        sampled_peers: sampled.len(),
        sampled_items: x,
        bytes,
    }
}

/// Solves `x_all = n · (1 − (1−ρ)^{v/n})` for `n` by binary search; the
/// right-hand side is increasing in `n` with asymptote `−ln(1−ρ)·v`.
fn solve_occupancy(x_all: f64, rho: f64, v: f64) -> u64 {
    if x_all <= 0.0 || v <= 0.0 {
        return 0;
    }
    if rho >= 1.0 {
        // Sampled everyone: x_all is exact.
        return x_all as u64;
    }
    let phi = |n: f64| n * (1.0 - (1.0 - rho).powf(v / n));
    let mut lo = x_all.max(1.0);
    let mut hi = v.max(lo); // n cannot exceed the number of instances
    if phi(hi) <= x_all {
        return hi as u64; // saturated: every instance is a distinct item
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < x_all {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifi_workload::{GroundTruth, WorkloadParams};

    fn setup(theta: f64, seed: u64) -> (Hierarchy, SystemData, GroundTruth) {
        let params = WorkloadParams {
            peers: 200,
            items: 5_000,
            instances_per_item: 10,
            theta,
        };
        let data = SystemData::generate(&params, seed);
        let truth = GroundTruth::compute(&data);
        let h = Hierarchy::balanced(200, 3);
        (h, data, truth)
    }

    #[test]
    fn estimates_track_ground_truth() {
        let (h, data, truth) = setup(1.0, 21);
        let t = truth.threshold_for_ratio(0.01);
        let cfg = SamplingConfig {
            branches: 24,
            items_per_peer: 250,
        };
        let stats = estimate(
            &h,
            &data,
            t,
            &cfg,
            &WireSizes::default(),
            &mut DetRng::new(5),
        );

        // r̂ within a factor of two of the true heavy count.
        let r = truth.heavy_count(t) as f64;
        assert!(r >= 1.0);
        assert!(
            (stats.r_hat as f64) >= r / 2.0 && (stats.r_hat as f64) <= r * 2.0,
            "r̂ = {} vs r = {r}",
            stats.r_hat
        );

        // n̂ within a factor of two of the universe size.
        let n = data.universe() as f64;
        assert!(
            (stats.n_hat as f64) >= n / 2.0 && (stats.n_hat as f64) <= n * 2.0,
            "n̂ = {} vs n = {n}",
            stats.n_hat
        );

        // v̄_light within a factor of three of truth (light values are
        // tiny integers, so the sampled ratio is coarse).
        let vl = truth.avg_light_value(t);
        assert!(
            stats.v_light_bar > vl / 3.0 && stats.v_light_bar < vl * 3.0,
            "v̄_light = {} vs {vl}",
            stats.v_light_bar
        );
    }

    #[test]
    fn v_bar_universe_uses_n_hat() {
        let (h, data, truth) = setup(1.0, 22);
        let t = truth.threshold_for_ratio(0.01);
        let stats = estimate(
            &h,
            &data,
            t,
            &SamplingConfig::default(),
            &WireSizes::default(),
            &mut DetRng::new(6),
        );
        let vb = stats.v_bar_universe(truth.total_value());
        let true_vb = truth.avg_value();
        assert!(
            vb > true_vb / 3.0 && vb < true_vb * 3.0,
            "{vb} vs {true_vb}"
        );
    }

    #[test]
    fn more_branches_cost_more_bytes() {
        let (h, data, truth) = setup(1.0, 23);
        let t = truth.threshold_for_ratio(0.01);
        let small = estimate(
            &h,
            &data,
            t,
            &SamplingConfig {
                branches: 2,
                items_per_peer: 50,
            },
            &WireSizes::default(),
            &mut DetRng::new(7),
        );
        let big = estimate(
            &h,
            &data,
            t,
            &SamplingConfig {
                branches: 16,
                items_per_peer: 50,
            },
            &WireSizes::default(),
            &mut DetRng::new(7),
        );
        assert!(big.bytes > small.bytes);
        assert!(big.sampled_peers >= small.sampled_peers);
        assert!(big.sampled_items >= small.sampled_items);
    }

    #[test]
    fn occupancy_solver_edge_cases() {
        // Full sampling: exact count.
        assert_eq!(solve_occupancy(500.0, 1.0, 10_000.0), 500);
        // No items seen: zero.
        assert_eq!(solve_occupancy(0.0, 0.1, 10_000.0), 0);
        // Monotone: more observed distinct items → larger n̂.
        let a = solve_occupancy(100.0, 0.1, 10_000.0);
        let b = solve_occupancy(300.0, 0.1, 10_000.0);
        assert!(b > a);
    }

    #[test]
    fn occupancy_solver_recovers_known_n() {
        // Forward-simulate: n = 2000, v = 20000 (avg value 10), ρ = 0.15
        // → expected x_all = n(1-(1-ρ)^10).
        let n = 2000.0;
        let rho = 0.15f64;
        let v = 20_000.0;
        let x_all = n * (1.0 - (1.0 - rho).powf(v / n));
        let n_hat = solve_occupancy(x_all, rho, v);
        assert!(
            (n_hat as f64 - n).abs() < 0.02 * n,
            "n̂ = {n_hat} for true n = {n}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (h, data, truth) = setup(0.8, 24);
        let t = truth.threshold_for_ratio(0.01);
        let cfg = SamplingConfig::default();
        let a = estimate(
            &h,
            &data,
            t,
            &cfg,
            &WireSizes::default(),
            &mut DetRng::new(9),
        );
        let b = estimate(
            &h,
            &data,
            t,
            &cfg,
            &WireSizes::default(),
            &mut DetRng::new(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn sink_variant_matches_plain_and_accounts_traffic() {
        let (h, data, truth) = setup(1.0, 26);
        let t = truth.threshold_for_ratio(0.01);
        let cfg = SamplingConfig {
            branches: 6,
            items_per_peer: 80,
        };
        let plain = estimate(
            &h,
            &data,
            t,
            &cfg,
            &WireSizes::default(),
            &mut DetRng::new(12),
        );
        let mut sink = EventSink::new(data.peer_count());
        let sunk = estimate_with_sink(
            &h,
            &data,
            t,
            &cfg,
            &WireSizes::default(),
            &mut DetRng::new(12),
            &mut sink,
        );
        assert_eq!(sunk, plain);
        let report = sink.report();
        assert_eq!(report.phase_bytes("sampling"), plain.bytes);
        assert_eq!(
            report.phase("sampling").unwrap().active_peers(),
            plain.sampled_peers
        );
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn zero_branches_panics() {
        let (h, data, _) = setup(1.0, 25);
        let _ = estimate(
            &h,
            &data,
            10,
            &SamplingConfig {
                branches: 0,
                items_per_peer: 1,
            },
            &WireSizes::default(),
            &mut DetRng::new(1),
        );
    }
}
