//! Push-sum gossip aggregation — the paper's discussed alternative.
//!
//! §III-A: *"gossip-based aggregate computation … require multiple
//! (O(log N)) rounds of communication among peers till the aggregates
//! (almost) converge"* and yields approximate values; netFilter therefore
//! uses hierarchical aggregation, but the paper's conclusion names
//! fault-tolerant gossip as future work. This module implements the
//! classic push-sum protocol (Kempe et al.) over the overlay so that the
//! trade-off (rounds × approximation vs. one exact convergecast) can be
//! measured — see the `gossip_vs_hierarchy` ablation bench.
//!
//! Round structure is synchronous: in each round every peer splits its
//! `(sum, weight)` pair in half, keeps one half, and sends the other to a
//! uniformly random overlay neighbor. The mass-conservation invariant
//! (`Σ sums` and `Σ weights` are constant) is checked in tests; each
//! peer's estimate `s/w` converges to the global average, and the sum
//! estimate is `N · s/w`.

use ifi_overlay::Topology;
use ifi_sim::{DetRng, EventSink, MsgClass, PeerId};

use crate::wire::WireSizes;

/// Result of a push-sum run.
#[derive(Debug, Clone)]
pub struct GossipOutcome {
    /// Per-peer estimates of the global **average** after the final round.
    pub avg_estimates: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bytes sent (each message carries one `(sum, weight)` pair,
    /// `2·s_a` bytes).
    pub total_bytes: u64,
}

impl GossipOutcome {
    /// Per-peer estimates of the global **sum** (`N ×` average).
    pub fn sum_estimates(&self) -> Vec<f64> {
        let n = self.avg_estimates.len() as f64;
        self.avg_estimates.iter().map(|&a| a * n).collect()
    }

    /// The paper's cost metric: average bytes per peer.
    pub fn avg_bytes_per_peer(&self) -> f64 {
        if self.avg_estimates.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / self.avg_estimates.len() as f64
        }
    }

    /// Worst relative error of the per-peer sum estimates against the true
    /// sum.
    pub fn max_relative_error(&self, true_sum: f64) -> f64 {
        assert!(true_sum != 0.0, "relative error undefined for zero sum");
        self.sum_estimates()
            .iter()
            .map(|&e| ((e - true_sum) / true_sum).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs `rounds` of push-sum over `topology`, starting from per-peer
/// `values`.
///
/// # Panics
///
/// Panics if `values.len()` differs from the peer count, or any peer has
/// no neighbors (mass would strand).
pub fn push_sum(
    topology: &Topology,
    values: &[f64],
    rounds: usize,
    sizes: &WireSizes,
    rng: &mut DetRng,
) -> GossipOutcome {
    push_sum_with_sink(
        topology,
        values,
        rounds,
        sizes,
        rng,
        &mut EventSink::disabled(),
    )
}

/// [`push_sum`] that additionally charges each round's sends into `sink`
/// (class [`MsgClass::GOSSIP`], one event per sender per round). Recording
/// draws no randomness, so the outcome is identical to the plain variant.
pub fn push_sum_with_sink(
    topology: &Topology,
    values: &[f64],
    rounds: usize,
    sizes: &WireSizes,
    rng: &mut DetRng,
    sink: &mut EventSink,
) -> GossipOutcome {
    let n = topology.peer_count();
    assert_eq!(values.len(), n, "one value per peer required");
    for p in topology.peers() {
        assert!(
            topology.degree(p) > 0,
            "gossip requires every peer to have a neighbor ({p} has none)"
        );
    }
    let mut sums = values.to_vec();
    let mut weights = vec![1.0f64; n];
    let msg_bytes = 2 * sizes.sa;
    let mut total_bytes = 0u64;

    for _ in 0..rounds {
        let mut inbox_s = vec![0.0f64; n];
        let mut inbox_w = vec![0.0f64; n];
        for i in 0..n {
            let p = PeerId::new(i);
            let half_s = sums[i] / 2.0;
            let half_w = weights[i] / 2.0;
            // Keep one half …
            inbox_s[i] += half_s;
            inbox_w[i] += half_w;
            // … push the other to a random neighbor.
            let nbrs = topology.neighbors(p);
            let target = nbrs[rng.below(nbrs.len() as u64) as usize];
            inbox_s[target.index()] += half_s;
            inbox_w[target.index()] += half_w;
            total_bytes += msg_bytes;
            sink.record(p, MsgClass::GOSSIP, msg_bytes);
        }
        sums = inbox_s;
        weights = inbox_w;
    }

    let avg_estimates = sums
        .iter()
        .zip(&weights)
        .map(|(&s, &w)| if w > 0.0 { s / w } else { 0.0 })
        .collect();
    GossipOutcome {
        avg_estimates,
        rounds,
        total_bytes,
    }
}

/// Result of a vector push-sum run.
#[derive(Debug, Clone)]
pub struct GossipVecOutcome {
    /// `avg_estimates[p][k]` — peer `p`'s estimate of the global average
    /// of component `k` after the final round.
    pub avg_estimates: Vec<Vec<f64>>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bytes sent: each message carries `dim` sums plus one weight,
    /// `(dim + 1)·s_a` bytes.
    pub total_bytes: u64,
}

impl GossipVecOutcome {
    /// Peer `p`'s estimates of the global **sums** (`N ×` averages).
    pub fn sum_estimates(&self, p: usize) -> Vec<f64> {
        let n = self.avg_estimates.len() as f64;
        self.avg_estimates[p].iter().map(|&a| a * n).collect()
    }

    /// Average bytes per peer.
    pub fn avg_bytes_per_peer(&self) -> f64 {
        if self.avg_estimates.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / self.avg_estimates.len() as f64
        }
    }

    /// Worst relative error over all peers and components against the true
    /// component sums (components with true sum 0 are skipped).
    pub fn max_relative_error(&self, true_sums: &[f64]) -> f64 {
        let n = self.avg_estimates.len() as f64;
        let mut worst = 0.0f64;
        for row in &self.avg_estimates {
            for (k, &a) in row.iter().enumerate() {
                let truth = true_sums[k];
                if truth != 0.0 {
                    worst = worst.max(((a * n - truth) / truth).abs());
                }
            }
        }
        worst
    }
}

/// Runs `rounds` of push-sum over a whole **vector** per peer — all
/// components share one weight, so a single gossip execution estimates
/// every component simultaneously (this is how the gossip variant of
/// netFilter's candidate filtering moves all `f·g` item-group aggregates
/// at once).
///
/// # Panics
///
/// Panics if peers disagree on the vector dimension, the value count
/// differs from the peer count, or any peer is isolated.
pub fn push_sum_vec(
    topology: &Topology,
    values: &[Vec<f64>],
    rounds: usize,
    sizes: &WireSizes,
    rng: &mut DetRng,
) -> GossipVecOutcome {
    push_sum_vec_with_sink(
        topology,
        values,
        rounds,
        sizes,
        rng,
        &mut EventSink::disabled(),
    )
}

/// [`push_sum_vec`] that additionally charges each round's sends into
/// `sink` (class [`MsgClass::GOSSIP`]). Recording draws no randomness, so
/// the outcome is identical to the plain variant.
pub fn push_sum_vec_with_sink(
    topology: &Topology,
    values: &[Vec<f64>],
    rounds: usize,
    sizes: &WireSizes,
    rng: &mut DetRng,
    sink: &mut EventSink,
) -> GossipVecOutcome {
    let n = topology.peer_count();
    assert_eq!(values.len(), n, "one vector per peer required");
    let dim = values.first().map(Vec::len).unwrap_or(0);
    for (i, v) in values.iter().enumerate() {
        assert_eq!(v.len(), dim, "peer {i} has a different vector dimension");
    }
    for p in topology.peers() {
        assert!(
            topology.degree(p) > 0,
            "gossip requires every peer to have a neighbor ({p} has none)"
        );
    }
    let mut sums: Vec<Vec<f64>> = values.to_vec();
    let mut weights = vec![1.0f64; n];
    let msg_bytes = (dim as u64 + 1) * sizes.sa;
    let mut total_bytes = 0u64;

    for _ in 0..rounds {
        let mut inbox_s = vec![vec![0.0f64; dim]; n];
        let mut inbox_w = vec![0.0f64; n];
        for i in 0..n {
            let p = PeerId::new(i);
            for s in sums[i].iter_mut() {
                *s /= 2.0;
            }
            let half_w = weights[i] / 2.0;
            for k in 0..dim {
                inbox_s[i][k] += sums[i][k];
            }
            inbox_w[i] += half_w;
            let nbrs = topology.neighbors(p);
            let target = nbrs[rng.below(nbrs.len() as u64) as usize].index();
            for k in 0..dim {
                inbox_s[target][k] += sums[i][k];
            }
            inbox_w[target] += half_w;
            total_bytes += msg_bytes;
            sink.record(p, MsgClass::GOSSIP, msg_bytes);
        }
        sums = inbox_s;
        weights = inbox_w;
    }

    let avg_estimates = sums
        .into_iter()
        .zip(&weights)
        .map(|(row, &w)| {
            row.into_iter()
                .map(|s| if w > 0.0 { s / w } else { 0.0 })
                .collect()
        })
        .collect();
    GossipVecOutcome {
        avg_estimates,
        rounds,
        total_bytes,
    }
}

/// Rounds needed for push-sum to drive the *diffusion error* below `eps`
/// with good probability — the `O(log N + log 1/ε)` bound the paper cites.
/// Used by callers that want a convergence-matched comparison.
pub fn recommended_rounds(n: usize, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps out of (0, 1)");
    let n = n.max(2) as f64;
    (2.0 * (n.ln() + (1.0 / eps).ln())).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 + 1.0).collect()
    }

    #[test]
    fn converges_to_the_true_sum() {
        let mut rng = DetRng::new(11);
        let topo = Topology::random_regular(100, 6, &mut rng);
        let vals = values(100);
        let true_sum: f64 = vals.iter().sum();
        let rounds = recommended_rounds(100, 1e-4);
        let out = push_sum(&topo, &vals, rounds, &WireSizes::default(), &mut rng);
        assert!(
            out.max_relative_error(true_sum) < 0.05,
            "error {} after {rounds} rounds",
            out.max_relative_error(true_sum)
        );
    }

    #[test]
    fn error_decreases_with_rounds() {
        let mut rng = DetRng::new(13);
        let topo = Topology::random_regular(64, 5, &mut rng);
        let vals = values(64);
        let true_sum: f64 = vals.iter().sum();
        let e_short = push_sum(&topo, &vals, 5, &WireSizes::default(), &mut DetRng::new(7))
            .max_relative_error(true_sum);
        let e_long = push_sum(&topo, &vals, 60, &WireSizes::default(), &mut DetRng::new(7))
            .max_relative_error(true_sum);
        assert!(e_long < e_short / 4.0, "short {e_short} vs long {e_long}");
    }

    #[test]
    fn mass_conservation_via_exact_average_of_estimweights() {
        // With weights summing to n and sums summing to Σv, a weighted
        // average of the per-peer estimates recovers the true average
        // exactly — the conservation invariant in disguise.
        let mut rng = DetRng::new(17);
        let topo = Topology::ring(10);
        let vals = values(10);
        let out = push_sum(&topo, &vals, 8, &WireSizes::default(), &mut rng);
        let truth: f64 = vals.iter().sum::<f64>();
        // Re-derive: Σ estimates·w = Σ s = truth; we can't see w here, but
        // an 8-round ring must at least keep every estimate finite and
        // positive.
        assert!(out.avg_estimates.iter().all(|&e| e.is_finite() && e > 0.0));
        let sum_est: f64 = out.sum_estimates().iter().sum::<f64>() / 10.0;
        assert!((sum_est - truth).abs() / truth < 0.5);
    }

    #[test]
    fn byte_accounting_is_rounds_times_peers() {
        let mut rng = DetRng::new(19);
        let topo = Topology::ring(10);
        let out = push_sum(&topo, &values(10), 7, &WireSizes::default(), &mut rng);
        assert_eq!(out.total_bytes, 7 * 10 * 8);
        assert_eq!(out.avg_bytes_per_peer(), 7.0 * 8.0);
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn gossip_costs_more_than_one_convergecast_for_scalar() {
        // The paper's §III-A rationale: hierarchical aggregation needs one
        // pass (s_a bytes per peer); gossip needs O(log N) rounds of 2·s_a.
        let n = 256;
        let conv_bytes_per_peer = 4.0 * (n as f64 - 1.0) / n as f64;
        let rounds = recommended_rounds(n, 1e-3);
        let gossip_bytes_per_peer = (rounds as u64 * 2 * 4) as f64;
        assert!(gossip_bytes_per_peer > 5.0 * conv_bytes_per_peer);
    }

    #[test]
    #[should_panic(expected = "one value per peer")]
    fn wrong_value_count_panics() {
        let topo = Topology::ring(4);
        let _ = push_sum(&topo, &[1.0], 1, &WireSizes::default(), &mut DetRng::new(1));
    }

    #[test]
    #[should_panic(expected = "neighbor")]
    fn isolated_peer_panics() {
        let topo = Topology::empty(3);
        let _ = push_sum(
            &topo,
            &[1.0, 2.0, 3.0],
            1,
            &WireSizes::default(),
            &mut DetRng::new(1),
        );
    }

    #[test]
    fn vector_push_sum_converges_componentwise() {
        let mut rng = DetRng::new(21);
        let topo = Topology::random_regular(80, 6, &mut rng);
        let values: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64, 1.0, (i % 7) as f64])
            .collect();
        let mut true_sums = vec![0.0; 3];
        for v in &values {
            for k in 0..3 {
                true_sums[k] += v[k];
            }
        }
        let rounds = recommended_rounds(80, 1e-4);
        let out = push_sum_vec(&topo, &values, rounds, &WireSizes::default(), &mut rng);
        assert!(
            out.max_relative_error(&true_sums) < 0.05,
            "error {}",
            out.max_relative_error(&true_sums)
        );
        // Every peer's estimate vector has the right dimension.
        assert!(out.avg_estimates.iter().all(|r| r.len() == 3));
        assert_eq!(out.sum_estimates(0).len(), 3);
    }

    #[test]
    fn vector_push_sum_bytes_amortize_the_weight() {
        let mut rng = DetRng::new(22);
        let topo = Topology::ring(10);
        let values = vec![vec![1.0; 5]; 10];
        let out = push_sum_vec(&topo, &values, 4, &WireSizes::default(), &mut rng);
        // (dim + 1) · s_a per message: one shared weight for 5 components.
        assert_eq!(out.total_bytes, 4 * 10 * 6 * 4);
        assert_eq!(out.avg_bytes_per_peer(), (4 * 6 * 4) as f64);
    }

    #[test]
    fn vector_push_sum_zero_dim_is_harmless() {
        let mut rng = DetRng::new(23);
        let topo = Topology::ring(4);
        let out = push_sum_vec(
            &topo,
            &vec![Vec::new(); 4],
            3,
            &WireSizes::default(),
            &mut rng,
        );
        assert!(out.avg_estimates.iter().all(Vec::is_empty));
        assert_eq!(out.total_bytes, 3 * 4 * 4); // weight-only messages
    }

    #[test]
    #[should_panic(expected = "different vector dimension")]
    fn vector_dimension_mismatch_panics() {
        let topo = Topology::ring(3);
        let _ = push_sum_vec(
            &topo,
            &[vec![1.0], vec![1.0, 2.0], vec![1.0]],
            1,
            &WireSizes::default(),
            &mut DetRng::new(1),
        );
    }

    #[test]
    fn sink_variant_matches_plain_and_reconciles_bytes() {
        let topo = Topology::ring(12);
        let vals = values(12);
        let plain = push_sum(&topo, &vals, 6, &WireSizes::default(), &mut DetRng::new(31));
        let mut sink = EventSink::new(12);
        sink.enter("gossip-filtering");
        let sunk = push_sum_with_sink(
            &topo,
            &vals,
            6,
            &WireSizes::default(),
            &mut DetRng::new(31),
            &mut sink,
        );
        sink.exit();
        assert_eq!(sunk.avg_estimates, plain.avg_estimates);
        assert_eq!(sunk.total_bytes, plain.total_bytes);
        let report = sink.report();
        assert_eq!(report.phase_bytes("gossip-filtering"), plain.total_bytes);
        // Every peer sends exactly once per round.
        let per_peer = report.phase_peer_bytes("gossip-filtering").unwrap();
        assert!(per_peer.iter().all(|&b| b == 6 * 8));
    }

    #[test]
    fn vec_sink_variant_falls_back_to_gossip_class_phase() {
        let topo = Topology::ring(5);
        let values = vec![vec![2.0; 3]; 5];
        let mut sink = EventSink::new(5);
        let out = push_sum_vec_with_sink(
            &topo,
            &values,
            2,
            &WireSizes::default(),
            &mut DetRng::new(33),
            &mut sink,
        );
        let report = sink.report();
        assert_eq!(report.phase_bytes("gossip"), out.total_bytes);
        assert_eq!(report.total_messages(), 2 * 5);
    }

    #[test]
    fn recommended_rounds_grows_with_n_and_precision() {
        assert!(recommended_rounds(1000, 1e-3) > recommended_rounds(10, 1e-3));
        assert!(recommended_rounds(100, 1e-6) > recommended_rounds(100, 1e-2));
    }
}
