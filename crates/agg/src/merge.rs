//! Mergeable aggregate values.

use std::collections::BTreeMap;

use ifi_workload::ItemId;

use crate::wire::WireSizes;

/// A value that can be merged bottom-up along the hierarchy and has a
/// defined wire encoding size.
///
/// Merging must be **commutative and associative** (children may be merged
/// in any order); this is property-tested in the `netfilter` integration
/// suite for all three implementations below.
pub trait Aggregate: Clone + std::fmt::Debug {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);

    /// Folds an **owned** `other` into `self`. Must compute exactly the
    /// same value as [`merge`](Aggregate::merge); implementations may
    /// exploit ownership (e.g. keeping the larger of two containers) to
    /// avoid re-inserting the bigger side. The default delegates to
    /// `merge`, so overriding is purely an optimization.
    fn merge_owned(&mut self, other: Self) {
        self.merge(&other);
    }

    /// Bytes needed to transmit this value under the given size model.
    fn encoded_bytes(&self, sizes: &WireSizes) -> u64;
}

/// A single summed counter — used for `v` (total mass) and `N` (peer
/// count), which the paper obtains "through simple aggregate computation"
/// (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScalarSum(pub u64);

impl Aggregate for ScalarSum {
    fn merge(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn encoded_bytes(&self, sizes: &WireSizes) -> u64 {
        sizes.sa
    }
}

/// A fixed-width vector of summed counters — the item-group aggregate
/// vector of candidate filtering (`f·g` slots, `s_a` bytes each).
///
/// Peers always transmit the full vector ("all these peers need to
/// propagate the aggregates for all the item groups", §IV-A), so the
/// encoded size is `s_a · len` regardless of how many slots are zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VecSum(pub Vec<u64>);

impl VecSum {
    /// A zeroed vector of `len` slots.
    pub fn zeros(len: usize) -> Self {
        VecSum(vec![0; len])
    }
}

impl Aggregate for VecSum {
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "merging group vectors of different filter dimensions"
        );
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    fn encoded_bytes(&self, sizes: &WireSizes) -> u64 {
        sizes.sa * self.0.len() as u64
    }
}

/// A sparse `item → summed value` map — the partial candidate sets of
/// candidate verification (Alg. 2) and the full item maps of the naive
/// approach. Encodes as one `(s_i + s_a)` pair per entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapSum(pub BTreeMap<ItemId, u64>);

impl MapSum {
    /// Builds from `(item, value)` pairs, summing duplicates.
    ///
    /// Sorts the pairs and folds duplicate keys first, so the map is built
    /// from a sorted deduplicated run — `BTreeMap::from_iter` bulk-loads
    /// sorted input in linear time, vs one `O(log n)` rebalancing insert
    /// per pair.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ItemId, u64)>) -> Self {
        let mut v: Vec<(ItemId, u64)> = pairs.into_iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        let mut folded: Vec<(ItemId, u64)> = Vec::with_capacity(v.len());
        for (k, val) in v {
            match folded.last_mut() {
                Some((lk, lv)) if *lk == k => *lv += val,
                _ => folded.push((k, val)),
            }
        }
        MapSum(folded.into_iter().collect())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The summed value for `item`, 0 if absent.
    pub fn value(&self, item: ItemId) -> u64 {
        self.0.get(&item).copied().unwrap_or(0)
    }
}

impl Aggregate for MapSum {
    fn merge(&mut self, other: &Self) {
        for (&k, &v) in &other.0 {
            *self.0.entry(k).or_insert(0) += v;
        }
    }

    /// Union-by-size: keeps the larger map and re-inserts only the smaller
    /// side. Addition is commutative, so the result (and therefore
    /// [`encoded_bytes`](Aggregate::encoded_bytes) of the merged value) is
    /// identical to [`merge`](Aggregate::merge) — only the insert count
    /// changes, which is what makes deep naive-approach unions cheap.
    fn merge_owned(&mut self, mut other: Self) {
        if other.0.len() > self.0.len() {
            std::mem::swap(&mut self.0, &mut other.0);
        }
        for (k, v) in other.0 {
            *self.0.entry(k).or_insert(0) += v;
        }
    }

    fn encoded_bytes(&self, sizes: &WireSizes) -> u64 {
        sizes.pair() * self.0.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sum_merges_and_sizes() {
        let mut a = ScalarSum(3);
        a.merge(&ScalarSum(4));
        assert_eq!(a, ScalarSum(7));
        assert_eq!(a.encoded_bytes(&WireSizes::default()), 4);
    }

    #[test]
    fn vec_sum_elementwise() {
        let mut a = VecSum(vec![1, 2, 3]);
        a.merge(&VecSum(vec![10, 0, 5]));
        assert_eq!(a.0, vec![11, 2, 8]);
        assert_eq!(a.encoded_bytes(&WireSizes::default()), 12);
        assert_eq!(VecSum::zeros(4).0, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "different filter dimensions")]
    fn vec_sum_dimension_mismatch_panics() {
        let mut a = VecSum(vec![1]);
        a.merge(&VecSum(vec![1, 2]));
    }

    #[test]
    fn map_sum_union_with_addition() {
        let mut a = MapSum::from_pairs([(ItemId(1), 5), (ItemId(2), 1)]);
        let b = MapSum::from_pairs([(ItemId(2), 2), (ItemId(9), 7)]);
        a.merge(&b);
        assert_eq!(a.value(ItemId(1)), 5);
        assert_eq!(a.value(ItemId(2)), 3);
        assert_eq!(a.value(ItemId(9)), 7);
        assert_eq!(a.value(ItemId(0)), 0);
        assert_eq!(a.len(), 3);
        // 3 entries × (4 + 4) bytes.
        assert_eq!(a.encoded_bytes(&WireSizes::default()), 24);
    }

    #[test]
    fn from_pairs_sums_duplicates() {
        let m = MapSum::from_pairs([(ItemId(1), 2), (ItemId(1), 3)]);
        assert_eq!(m.value(ItemId(1)), 5);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn merge_owned_matches_merge_in_both_directions() {
        // The swap-to-larger fast path must be observationally identical
        // to the by-reference merge, whichever side is bigger.
        let small = MapSum::from_pairs([(ItemId(2), 2), (ItemId(9), 7)]);
        let big = MapSum::from_pairs([(ItemId(1), 5), (ItemId(2), 1), (ItemId(3), 3)]);
        for (a, b) in [(small.clone(), big.clone()), (big, small)] {
            let mut by_ref = a.clone();
            by_ref.merge(&b);
            let mut by_own = a;
            by_own.merge_owned(b);
            assert_eq!(by_own, by_ref);
            assert_eq!(
                by_own.encoded_bytes(&WireSizes::default()),
                by_ref.encoded_bytes(&WireSizes::default())
            );
        }
        // Default delegation path (no override).
        let mut s = ScalarSum(1);
        s.merge_owned(ScalarSum(2));
        assert_eq!(s, ScalarSum(3));
        let mut v = VecSum(vec![1, 2]);
        v.merge_owned(VecSum(vec![3, 4]));
        assert_eq!(v.0, vec![4, 6]);
    }

    #[test]
    fn merge_is_commutative_on_samples() {
        let a = MapSum::from_pairs([(ItemId(1), 1), (ItemId(3), 9)]);
        let b = MapSum::from_pairs([(ItemId(3), 2), (ItemId(4), 4)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
