//! Wire-size model: the paper's `s_a`, `s_g`, `s_i` constants.

/// Encoded sizes of the three primitive wire quantities (Table II/III).
///
/// * `sa` — size of the value representing an aggregate,
/// * `sg` — size of the identifier of an item group,
/// * `si` — size of the identifier of an item.
///
/// The paper's evaluation uses 4-byte integers for all three; that is the
/// [`Default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WireSizes {
    /// `s_a` — bytes per aggregate value.
    pub sa: u64,
    /// `s_g` — bytes per item-group identifier.
    pub sg: u64,
    /// `s_i` — bytes per item identifier.
    pub si: u64,
}

impl Default for WireSizes {
    fn default() -> Self {
        WireSizes {
            sa: 4,
            sg: 4,
            si: 4,
        }
    }
}

impl WireSizes {
    /// Bytes for one `(item identifier, aggregate value)` pair — the unit
    /// of candidate aggregation cost, `s_a + s_i`.
    pub fn pair(&self) -> u64 {
        self.sa + self.si
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let w = WireSizes::default();
        assert_eq!((w.sa, w.sg, w.si), (4, 4, 4));
        assert_eq!(w.pair(), 8);
    }
}
