//! Blind search over the unstructured overlay.
//!
//! The paper's setting is an unstructured P2P system whose peers
//! "collaborate with each other to perform various tasks including
//! routing, indexing, and searching" (§I), and several Table I
//! applications ("frequent keywords", "popular peers") count events that
//! query traffic generates. This module provides the two classic blind
//! search primitives of such systems — TTL-bounded **flooding** and
//! bounded **random walks** — with message accounting, so workloads and
//! examples can model realistic query traffic and its cost.

use std::collections::VecDeque;

use ifi_sim::{DetRng, PeerId};

use crate::topology::Topology;

/// Result of one search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Distinct holders discovered, sorted by peer id.
    pub found: Vec<PeerId>,
    /// Overlay messages spent.
    pub messages: u64,
    /// Hops from the origin to the first holder discovered, if any
    /// (0 when the origin itself holds the object).
    pub hops_to_first: Option<u32>,
}

/// TTL-bounded flooding from `origin`: every peer forwards the query to
/// all neighbors until the TTL expires; `holds` marks object holders.
///
/// Finds **every** holder within `ttl` hops, at a message cost that grows
/// with the neighborhood size — the classic Gnutella trade-off.
pub fn flood(
    topology: &Topology,
    origin: PeerId,
    ttl: u32,
    holds: impl Fn(PeerId) -> bool,
) -> SearchOutcome {
    let n = topology.peer_count();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    depth[origin.index()] = Some(0);
    let mut queue = VecDeque::from([origin]);
    let mut messages = 0u64;
    let mut found = Vec::new();
    let mut hops_to_first = None;

    while let Some(u) = queue.pop_front() {
        let du = depth[u.index()].expect("queued peers have depth");
        if holds(u) {
            found.push(u);
            hops_to_first.get_or_insert(du);
        }
        if du == ttl {
            continue;
        }
        for &v in topology.neighbors(u) {
            // Every forwarded copy is a message, even to peers that have
            // already seen the query (they discard duplicates).
            messages += 1;
            if depth[v.index()].is_none() {
                depth[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    found.sort_unstable();
    SearchOutcome {
        found,
        messages,
        hops_to_first,
    }
}

/// `walkers` independent random walks of at most `max_steps` hops each,
/// stopping early once any walker finds a holder.
///
/// Finds *a* holder (probabilistically) at a message cost bounded by
/// `walkers · max_steps`, independent of node degrees — the standard
/// low-overhead alternative to flooding for popular objects.
pub fn random_walk(
    topology: &Topology,
    origin: PeerId,
    walkers: usize,
    max_steps: u32,
    holds: impl Fn(PeerId) -> bool,
    rng: &mut DetRng,
) -> SearchOutcome {
    let mut messages = 0u64;
    let mut found = Vec::new();
    let mut hops_to_first = None;

    if holds(origin) {
        return SearchOutcome {
            found: vec![origin],
            messages: 0,
            hops_to_first: Some(0),
        };
    }

    'walkers: for _ in 0..walkers.max(1) {
        let mut at = origin;
        for step in 1..=max_steps {
            let nbrs = topology.neighbors(at);
            if nbrs.is_empty() {
                break;
            }
            at = nbrs[rng.below(nbrs.len() as u64) as usize];
            messages += 1;
            if holds(at) {
                if !found.contains(&at) {
                    found.push(at);
                }
                hops_to_first.get_or_insert(step);
                break 'walkers;
            }
        }
    }
    found.sort_unstable();
    SearchOutcome {
        found,
        messages,
        hops_to_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_finds_all_holders_within_ttl() {
        // Line of 10; holders at 2 and 7; origin 0.
        let topo = Topology::line(10);
        let holders = [PeerId::new(2), PeerId::new(7)];
        let out = flood(&topo, PeerId::new(0), 7, |p| holders.contains(&p));
        assert_eq!(out.found, holders);
        assert_eq!(out.hops_to_first, Some(2));

        // TTL 5 misses the holder at distance 7.
        let out = flood(&topo, PeerId::new(0), 5, |p| holders.contains(&p));
        assert_eq!(out.found, vec![PeerId::new(2)]);
    }

    #[test]
    fn flood_message_count_scales_with_neighborhood() {
        let mut rng = DetRng::new(1);
        let topo = Topology::random_regular(200, 4, &mut rng);
        let shallow = flood(&topo, PeerId::new(0), 1, |_| false);
        let deep = flood(&topo, PeerId::new(0), 4, |_| false);
        assert!(deep.messages > 5 * shallow.messages);
        assert_eq!(shallow.messages, topo.degree(PeerId::new(0)) as u64);
    }

    #[test]
    fn origin_holding_costs_nothing() {
        let topo = Topology::ring(5);
        let out = flood(&topo, PeerId::new(3), 0, |p| p == PeerId::new(3));
        assert_eq!(out.found, vec![PeerId::new(3)]);
        assert_eq!(out.hops_to_first, Some(0));
        assert_eq!(out.messages, 0);

        let out = random_walk(
            &topo,
            PeerId::new(3),
            4,
            10,
            |p| p == PeerId::new(3),
            &mut DetRng::new(2),
        );
        assert_eq!(out.messages, 0);
        assert_eq!(out.hops_to_first, Some(0));
    }

    #[test]
    fn random_walk_usually_finds_popular_objects_cheaply() {
        // 10% of peers hold the object; a few short walks find it with far
        // fewer messages than a deep flood.
        let mut rng = DetRng::new(3);
        let topo = Topology::random_regular(300, 4, &mut rng);
        let holds = |p: PeerId| p.index() % 10 == 1;
        let mut successes = 0;
        let mut walk_msgs = 0u64;
        for seed in 0..20 {
            let out = random_walk(&topo, PeerId::new(0), 4, 32, holds, &mut DetRng::new(seed));
            walk_msgs += out.messages;
            if !out.found.is_empty() {
                successes += 1;
            }
        }
        assert!(successes >= 17, "only {successes}/20 walks succeeded");
        let flood_msgs = flood(&topo, PeerId::new(0), 5, holds).messages;
        assert!(
            walk_msgs / 20 < flood_msgs,
            "avg walk {} !< flood {}",
            walk_msgs / 20,
            flood_msgs
        );
    }

    #[test]
    fn random_walk_respects_budget() {
        let topo = Topology::ring(50);
        let out = random_walk(&topo, PeerId::new(0), 3, 8, |_| false, &mut DetRng::new(4));
        assert!(out.found.is_empty());
        assert_eq!(out.messages, 3 * 8);
        assert_eq!(out.hops_to_first, None);
    }

    #[test]
    fn rare_object_flood_vs_walk_tradeoff() {
        // One holder in 300 peers: flooding always finds it; a small walk
        // budget often does not — the coverage/cost trade-off.
        let mut rng = DetRng::new(5);
        let topo = Topology::random_regular(300, 4, &mut rng);
        let holder = PeerId::new(250);
        let out = flood(&topo, PeerId::new(0), 10, |p| p == holder);
        assert_eq!(out.found, vec![holder]);
        let mut hits = 0;
        for seed in 0..10 {
            if !random_walk(
                &topo,
                PeerId::new(0),
                2,
                16,
                |p| p == holder,
                &mut DetRng::new(seed),
            )
            .found
            .is_empty()
            {
                hits += 1;
            }
        }
        assert!(hits < 10, "a tiny walk budget should not be reliable");
    }
}
