//! The full membership view: topology + stable participants + attachment.
//!
//! §III-A: *"we only recruit peers that are more stable (e.g., being online
//! for a longer time) to perform netFilter where other peers forward their
//! local item sets to one of these peers participating in netFilter."*
//!
//! An [`Overlay`] records which peers participate and, for every
//! non-participant, the participant it reports its local item set to.

use ifi_sim::{DetRng, PeerId};

use crate::churn::ChurnSchedule;
use crate::topology::Topology;

/// How the set of netFilter participants is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StableSelection {
    /// Every peer participates (the paper's evaluation setting: all `N`
    /// simulated peers run netFilter).
    All,
    /// The `fraction ∈ (0, 1]` most stable peers by online time.
    TopFraction(f64),
    /// Exactly `k` most stable peers.
    TopK(usize),
}

/// An unstructured P2P overlay with participant recruitment.
#[derive(Debug, Clone)]
pub struct Overlay {
    topology: Topology,
    participant: Vec<bool>,
    /// For non-participants, the participant that aggregates on their
    /// behalf; `None` for participants themselves.
    attachment: Vec<Option<PeerId>>,
}

impl Overlay {
    /// An overlay where every peer participates.
    pub fn all_participants(topology: Topology) -> Self {
        let n = topology.peer_count();
        Overlay {
            topology,
            participant: vec![true; n],
            attachment: vec![None; n],
        }
    }

    /// Builds an overlay by recruiting stable peers according to
    /// `selection`, scored by total online time in `schedule`. Every
    /// non-participant is attached to its BFS-nearest participant (ties
    /// broken by smallest peer id, matching deterministic BFS order);
    /// unreachable non-participants are attached to a uniformly random
    /// participant (modelling an out-of-band introduction).
    ///
    /// # Panics
    ///
    /// Panics if the selection yields zero participants, or if `schedule`
    /// covers a different number of peers than `topology`.
    pub fn recruit(
        topology: Topology,
        schedule: &ChurnSchedule,
        selection: StableSelection,
        rng: &mut DetRng,
    ) -> Self {
        let n = topology.peer_count();
        let stable: Vec<PeerId> = match selection {
            StableSelection::All => (0..n).map(PeerId::new).collect(),
            StableSelection::TopFraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "fraction out of (0, 1]");
                let k = ((n as f64 * f).ceil() as usize).clamp(1, n);
                schedule.most_stable(k)
            }
            StableSelection::TopK(k) => schedule.most_stable(k),
        };
        assert!(!stable.is_empty(), "no participants recruited");

        let mut participant = vec![false; n];
        for &p in &stable {
            participant[p.index()] = true;
        }

        // Multi-source BFS from all participants to find each
        // non-participant's nearest participant.
        let mut attachment: Vec<Option<PeerId>> = vec![None; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &p in &stable {
            dist[p.index()] = 0;
            attachment[p.index()] = None;
            queue.push_back((p, p));
        }
        // `origin` = the participant this BFS frontier grew from.
        while let Some((u, origin)) = queue.pop_front() {
            for &v in topology.neighbors(u) {
                if participant[v.index()] {
                    continue;
                }
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    attachment[v.index()] = Some(origin);
                    queue.push_back((v, origin));
                }
            }
        }
        // Anyone still unattached is disconnected from all participants.
        for i in 0..n {
            if !participant[i] && attachment[i].is_none() {
                let pick = stable[rng.below(stable.len() as u64) as usize];
                attachment[i] = Some(pick);
            }
        }

        Overlay {
            topology,
            participant,
            attachment,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of peers (participants + non-participants).
    pub fn peer_count(&self) -> usize {
        self.topology.peer_count()
    }

    /// Whether `peer` participates in netFilter.
    pub fn is_participant(&self, peer: PeerId) -> bool {
        self.participant[peer.index()]
    }

    /// All participants, sorted.
    pub fn participants(&self) -> Vec<PeerId> {
        (0..self.peer_count())
            .map(PeerId::new)
            .filter(|&p| self.is_participant(p))
            .collect()
    }

    /// The participant a non-participant reports to (`None` for
    /// participants).
    pub fn attachment(&self, peer: PeerId) -> Option<PeerId> {
        self.attachment[peer.index()]
    }

    /// For each participant, the non-participants that report to it.
    pub fn attached_to(&self, participant: PeerId) -> Vec<PeerId> {
        assert!(
            self.is_participant(participant),
            "attached_to called on non-participant {participant}"
        );
        (0..self.peer_count())
            .map(PeerId::new)
            .filter(|&p| self.attachment[p.index()] == Some(participant))
            .collect()
    }

    /// Adds overlay links between participants until the participant-
    /// induced subgraph is connected, returning the number of edges added.
    ///
    /// The hierarchy of §III-A is formed *among the netFilter
    /// participants*, so they must be mutually reachable without passing
    /// through transient peers; deployed systems achieve this by having
    /// stable peers maintain links to other stable peers, which this
    /// models.
    pub fn connect_participants(&mut self, rng: &mut DetRng) -> usize {
        let members: Vec<PeerId> = self.participants();
        if members.is_empty() {
            return 0;
        }
        let mut added = 0;
        loop {
            // Components of the participant-induced subgraph.
            let depths = self
                .topology
                .bfs_depths_filtered(members[0], |p| self.participant[p.index()]);
            let unreachable: Vec<PeerId> = members
                .iter()
                .copied()
                .filter(|p| depths[p.index()].is_none())
                .collect();
            let Some(&orphan) = unreachable.first() else {
                return added;
            };
            let reachable: Vec<PeerId> = members
                .iter()
                .copied()
                .filter(|p| depths[p.index()].is_some())
                .collect();
            let anchor = reachable[rng.below(reachable.len() as u64) as usize];
            if self.topology.add_edge(orphan, anchor) {
                added += 1;
            }
        }
    }

    /// Checks structural invariants; used by tests.
    pub fn check_invariants(&self) {
        for i in 0..self.peer_count() {
            let p = PeerId::new(i);
            match (self.is_participant(p), self.attachment(p)) {
                (true, Some(a)) => panic!("participant {p} attached to {a}"),
                (false, None) => panic!("non-participant {p} unattached"),
                (false, Some(a)) => assert!(
                    self.is_participant(a),
                    "{p} attached to non-participant {a}"
                ),
                (true, None) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::SessionModel;
    use ifi_sim::{Duration, SimTime};

    fn schedule(n: usize, seed: u64) -> ChurnSchedule {
        ChurnSchedule::generate(
            n,
            SessionModel::Exponential {
                mean_on: Duration::from_secs(100),
                mean_off: Duration::from_secs(100),
            },
            SimTime::from_micros(1_000_000_000),
            &mut DetRng::new(seed),
        )
    }

    #[test]
    fn all_participants_has_no_attachments() {
        let ov = Overlay::all_participants(Topology::ring(5));
        ov.check_invariants();
        assert_eq!(ov.participants().len(), 5);
        assert_eq!(ov.attachment(PeerId::new(3)), None);
    }

    #[test]
    fn top_k_recruits_exactly_k() {
        let topo = Topology::random_regular(40, 4, &mut DetRng::new(1));
        let ov = Overlay::recruit(
            topo,
            &schedule(40, 2),
            StableSelection::TopK(10),
            &mut DetRng::new(3),
        );
        ov.check_invariants();
        assert_eq!(ov.participants().len(), 10);
    }

    #[test]
    fn top_fraction_rounds_up_and_clamps() {
        let topo = Topology::random_regular(10, 3, &mut DetRng::new(1));
        let ov = Overlay::recruit(
            topo,
            &schedule(10, 2),
            StableSelection::TopFraction(0.25),
            &mut DetRng::new(3),
        );
        assert_eq!(ov.participants().len(), 3); // ceil(2.5)
    }

    #[test]
    fn attachment_prefers_nearest_participant() {
        // Line 0-1-2-3-4 with participants {0, 4}: peer 1 → 0, peer 3 → 4.
        let topo = Topology::line(5);
        // Build by hand through recruit's invariants: craft a schedule where
        // peers 0 and 4 have the most online time is awkward; instead test
        // the multi-source BFS directly through a TopK-like construction.
        let mut ov = Overlay::all_participants(topo);
        ov.participant = vec![true, false, false, false, true];
        ov.attachment = vec![None; 5];
        // Re-run the attachment logic by rebuilding via recruit-equivalent:
        // simplest is to recompute here with the same algorithm.
        let stable = vec![PeerId::new(0), PeerId::new(4)];
        let mut dist = [u32::MAX; 5];
        let mut queue = std::collections::VecDeque::new();
        for &p in &stable {
            dist[p.index()] = 0;
            queue.push_back((p, p));
        }
        while let Some((u, origin)) = queue.pop_front() {
            for &v in ov.topology.neighbors(u) {
                if ov.participant[v.index()] || dist[v.index()] != u32::MAX {
                    continue;
                }
                dist[v.index()] = dist[u.index()] + 1;
                ov.attachment[v.index()] = Some(origin);
                queue.push_back((v, origin));
            }
        }
        ov.check_invariants();
        assert_eq!(ov.attachment(PeerId::new(1)), Some(PeerId::new(0)));
        assert_eq!(ov.attachment(PeerId::new(3)), Some(PeerId::new(4)));
        // Peer 2 is equidistant; the frontier from peer 0 reaches it first
        // under deterministic BFS order.
        assert_eq!(
            ov.attached_to(PeerId::new(0)),
            vec![PeerId::new(1), PeerId::new(2)]
        );
    }

    #[test]
    fn disconnected_non_participants_get_random_attachment() {
        // Two components: {0,1} and {2,3}; participants only in {0,1}.
        let mut topo = Topology::empty(4);
        topo.add_edge(PeerId::new(0), PeerId::new(1));
        topo.add_edge(PeerId::new(2), PeerId::new(3));
        // Force participants {0} via TopK(1) regardless of schedule by using
        // a quiet schedule (all equal online time → ties by id → peer 0).
        let sched = ChurnSchedule::quiet(4, SimTime::from_micros(1_000));
        let ov = Overlay::recruit(topo, &sched, StableSelection::TopK(1), &mut DetRng::new(9));
        ov.check_invariants();
        assert_eq!(ov.participants(), vec![PeerId::new(0)]);
        assert_eq!(ov.attachment(PeerId::new(2)), Some(PeerId::new(0)));
    }

    #[test]
    fn connect_participants_makes_backbone_connected() {
        // Line 0-1-2-3-4 with participants {0, 4}: induced subgraph is
        // disconnected until a backbone edge is added.
        let topo = Topology::line(5);
        let sched = ChurnSchedule::quiet(5, SimTime::from_micros(1_000));
        let mut ov = Overlay::recruit(
            topo,
            &sched,
            StableSelection::TopK(2), // quiet schedule → ties by id → {0, 1}
            &mut DetRng::new(4),
        );
        // Force a disconnected participant set for the test.
        ov.participant = vec![true, false, false, false, true];
        ov.attachment = vec![
            None,
            Some(PeerId::new(0)),
            Some(PeerId::new(0)),
            Some(PeerId::new(4)),
            None,
        ];
        let added = ov.connect_participants(&mut DetRng::new(5));
        assert_eq!(added, 1);
        assert!(ov.topology().has_edge(PeerId::new(0), PeerId::new(4)));
        // Idempotent.
        assert_eq!(ov.connect_participants(&mut DetRng::new(6)), 0);
    }

    #[test]
    #[should_panic(expected = "non-participant")]
    fn attached_to_rejects_non_participant() {
        let topo = Topology::line(4);
        let sched = ChurnSchedule::quiet(4, SimTime::from_micros(1_000));
        let ov = Overlay::recruit(topo, &sched, StableSelection::TopK(1), &mut DetRng::new(9));
        let _ = ov.attached_to(PeerId::new(3));
    }
}
