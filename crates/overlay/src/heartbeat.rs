//! Heartbeat bookkeeping with the paper's `DEPTH` counter.
//!
//! §III-A.3: *"peers exchange heartbeat messages with their neighbors
//! periodically to inform the aliveness among each other. Here we modify
//! these heartbeat messages slightly by including a DEPTH counter,
//! indicating the depth of the message sender in the hierarchy."*
//!
//! [`HeartbeatTracker`] is a passive component that protocol state machines
//! embed: it decides when to emit heartbeats, records the last heartbeat
//! (and advertised depth) per neighbor, and reports which neighbors have
//! missed enough heartbeats to be declared failed. The hierarchy-repair
//! protocol in `ifi-hierarchy` is its main consumer.

use ifi_sim::{Duration, PeerId, PeerMap, SimTime};

/// Timing parameters for the heartbeat protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats sent to each neighbor.
    pub interval: Duration,
    /// A neighbor is declared failed after this long without a heartbeat
    /// ("lack of heartbeat messages … for a predefined time interval").
    pub timeout: Duration,
    /// Wire size of one heartbeat message (liveness bit + DEPTH counter).
    pub bytes: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_secs(1),
            timeout: Duration::from_secs(3),
            bytes: 8,
        }
    }
}

/// Liveness verdict for one neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborStatus {
    /// Heartbeats arriving on schedule; carries the last advertised depth
    /// (`None` until the first heartbeat arrives — neighbors get the benefit
    /// of the doubt for one timeout after tracking starts).
    Alive(Option<u32>),
    /// No heartbeat within the timeout.
    Suspected,
}

/// Per-neighbor heartbeat state embedded in protocol state machines.
#[derive(Debug, Clone)]
pub struct HeartbeatTracker {
    config: HeartbeatConfig,
    /// `(last heard, last advertised depth)` per tracked neighbor, stored
    /// in a degree-sized sorted arena. The tracking epoch starts at
    /// [`HeartbeatTracker::start`].
    last: PeerMap<(SimTime, Option<u32>)>,
    started: Option<SimTime>,
    /// Regression toggle: restore the pre-fix behavior where
    /// [`status`](Self::status) panicked on an untracked peer. Exists only
    /// so the schedule-exploration harness (`ifi-simcheck`) can prove it
    /// rediscovers the historical churn-race panic; never set in
    /// production code.
    legacy_strict_status: bool,
}

impl HeartbeatTracker {
    /// Creates a tracker for the given neighbor set.
    pub fn new(config: HeartbeatConfig, neighbors: impl IntoIterator<Item = PeerId>) -> Self {
        HeartbeatTracker {
            config,
            last: neighbors
                .into_iter()
                .map(|p| (p, (SimTime::ZERO, None)))
                .collect(),
            started: None,
            legacy_strict_status: false,
        }
    }

    /// Re-enables the historical pre-fix behavior: [`status`](Self::status)
    /// panics on an untracked peer instead of reporting `Suspected`. Test
    /// tooling only (see `ifi-simcheck`'s pinned regression cases).
    #[doc(hidden)]
    pub fn set_legacy_strict_status(&mut self, on: bool) {
        self.legacy_strict_status = on;
    }

    /// The timing parameters.
    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// Marks the start of the tracking epoch: every neighbor is treated as
    /// heard-from at `now` (grace period of one timeout).
    pub fn start(&mut self, now: SimTime) {
        self.started = Some(now);
        for (t, _) in self.last.values_mut() {
            *t = now;
        }
    }

    /// Records a heartbeat from `from` advertising `depth` (where
    /// `u32::MAX` encodes the paper's depth-∞ "detached" state).
    /// Unknown senders are added to the tracked set (new neighbors).
    pub fn on_heartbeat(&mut self, from: PeerId, depth: u32, now: SimTime) {
        self.last.insert(from, (now, Some(depth)));
    }

    /// Records liveness evidence from `peer` without a depth update — any
    /// received protocol message proves the sender was recently alive, so
    /// control messages (Attach/Detach) refresh the failure detector even
    /// though only heartbeats carry DEPTH. Without this, a parent can
    /// accept an `Attach` from a just-revived peer and then spuriously
    /// drop it on the next tick, before its first heartbeat lands.
    pub fn touch(&mut self, from: PeerId, now: SimTime) {
        let depth = self.last.get(from).and_then(|&(_, d)| d);
        self.last.insert(from, (now, depth));
    }

    /// Stops tracking a neighbor (e.g. after acting on its failure).
    pub fn forget(&mut self, peer: PeerId) {
        self.last.remove(peer);
    }

    /// The status of `peer` at time `now`.
    ///
    /// An **untracked** peer is reported [`NeighborStatus::Suspected`]:
    /// under churn, a heartbeat or status query can race a departure the
    /// tracker already acted on via [`forget`](Self::forget), and "no
    /// evidence of life" is exactly what `Suspected` means. (Any later
    /// message from the peer re-registers it — see
    /// [`on_heartbeat`](Self::on_heartbeat) / [`touch`](Self::touch).)
    ///
    /// # Panics
    ///
    /// Panics if [`start`](Self::start) was never called.
    pub fn status(&self, peer: PeerId, now: SimTime) -> NeighborStatus {
        assert!(self.started.is_some(), "tracker not started");
        match self.last.get(peer) {
            None if self.legacy_strict_status => panic!("peer {peer} is not tracked"),
            None => NeighborStatus::Suspected,
            Some(&(heard, depth)) => {
                if now.duration_since(heard) > self.config.timeout {
                    NeighborStatus::Suspected
                } else {
                    NeighborStatus::Alive(depth)
                }
            }
        }
    }

    /// All neighbors currently suspected of failure.
    pub fn suspected(&self, now: SimTime) -> Vec<PeerId> {
        self.last
            .keys()
            .filter(|&p| self.status(p, now) == NeighborStatus::Suspected)
            .collect()
    }

    /// The last depth advertised by `peer`, if any heartbeat arrived.
    pub fn advertised_depth(&self, peer: PeerId) -> Option<u32> {
        self.last.get(peer).and_then(|&(_, d)| d)
    }

    /// Tracked neighbors (sorted).
    pub fn tracked(&self) -> Vec<PeerId> {
        self.last.keys().collect()
    }

    /// Peak number of neighbors ever tracked — arena occupancy for the perf
    /// benches' state-layout counters.
    pub fn tracked_high_water(&self) -> usize {
        self.last.high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tracker() -> HeartbeatTracker {
        let cfg = HeartbeatConfig {
            interval: Duration::from_micros(100),
            timeout: Duration::from_micros(300),
            bytes: 8,
        };
        let mut hb = HeartbeatTracker::new(cfg, [PeerId::new(1), PeerId::new(2)]);
        hb.start(t(0));
        hb
    }

    #[test]
    fn alive_within_timeout_then_suspected() {
        let mut hb = tracker();
        hb.on_heartbeat(PeerId::new(1), 2, t(100));
        assert_eq!(
            hb.status(PeerId::new(1), t(350)),
            NeighborStatus::Alive(Some(2))
        );
        assert_eq!(hb.status(PeerId::new(1), t(401)), NeighborStatus::Suspected);
    }

    #[test]
    fn grace_period_before_first_heartbeat() {
        let hb = tracker();
        assert_eq!(
            hb.status(PeerId::new(2), t(300)),
            NeighborStatus::Alive(None)
        );
        assert_eq!(hb.status(PeerId::new(2), t(301)), NeighborStatus::Suspected);
    }

    #[test]
    fn suspected_lists_all_silent_neighbors() {
        let mut hb = tracker();
        hb.on_heartbeat(PeerId::new(1), 0, t(500));
        assert_eq!(hb.suspected(t(600)), vec![PeerId::new(2)]);
        assert_eq!(hb.suspected(t(900)), vec![PeerId::new(1), PeerId::new(2)]);
    }

    #[test]
    fn heartbeat_revives_suspected_neighbor() {
        let mut hb = tracker();
        assert_eq!(
            hb.status(PeerId::new(1), t(1000)),
            NeighborStatus::Suspected
        );
        hb.on_heartbeat(PeerId::new(1), 7, t(1000));
        assert_eq!(
            hb.status(PeerId::new(1), t(1100)),
            NeighborStatus::Alive(Some(7))
        );
        assert_eq!(hb.advertised_depth(PeerId::new(1)), Some(7));
    }

    #[test]
    fn unknown_sender_becomes_tracked() {
        let mut hb = tracker();
        hb.on_heartbeat(PeerId::new(9), 4, t(50));
        assert!(hb.tracked().contains(&PeerId::new(9)));
        assert_eq!(
            hb.status(PeerId::new(9), t(60)),
            NeighborStatus::Alive(Some(4))
        );
    }

    #[test]
    fn touch_refreshes_liveness_but_keeps_depth() {
        let mut hb = tracker();
        hb.on_heartbeat(PeerId::new(1), 4, t(100));
        // Silent past the timeout, then a control message arrives.
        assert_eq!(hb.status(PeerId::new(1), t(500)), NeighborStatus::Suspected);
        hb.touch(PeerId::new(1), t(500));
        assert_eq!(
            hb.status(PeerId::new(1), t(600)),
            NeighborStatus::Alive(Some(4)),
            "touch must refresh liveness and preserve the advertised depth"
        );
        // Touching an untracked peer starts tracking it with unknown depth.
        hb.touch(PeerId::new(9), t(500));
        assert_eq!(
            hb.status(PeerId::new(9), t(600)),
            NeighborStatus::Alive(None)
        );
    }

    #[test]
    fn forget_removes_neighbor() {
        let mut hb = tracker();
        hb.forget(PeerId::new(2));
        assert_eq!(hb.tracked(), vec![PeerId::new(1)]);
    }

    #[test]
    fn status_of_unknown_is_suspected() {
        let hb = tracker();
        assert_eq!(hb.status(PeerId::new(42), t(0)), NeighborStatus::Suspected);
    }

    #[test]
    fn heartbeat_after_departure_does_not_panic() {
        // Churn race: the tracker acts on a neighbor's failure and forgets
        // it, then an in-flight heartbeat from the departed peer lands.
        // The tracker must take the late evidence gracefully — report the
        // unknown peer as Suspected, then re-register it on the heartbeat.
        let mut hb = tracker();
        hb.forget(PeerId::new(2));
        assert_eq!(hb.status(PeerId::new(2), t(400)), NeighborStatus::Suspected);
        hb.on_heartbeat(PeerId::new(2), 3, t(450));
        assert_eq!(
            hb.status(PeerId::new(2), t(500)),
            NeighborStatus::Alive(Some(3)),
            "a late heartbeat re-registers the departed peer"
        );
        assert!(hb.tracked().contains(&PeerId::new(2)));
    }

    #[test]
    #[should_panic(expected = "not started")]
    fn status_before_start_panics() {
        let hb = HeartbeatTracker::new(HeartbeatConfig::default(), [PeerId::new(1)]);
        let _ = hb.status(PeerId::new(1), t(0));
    }

    #[test]
    #[should_panic(expected = "is not tracked")]
    fn legacy_strict_status_restores_the_pre_fix_panic() {
        let mut hb = tracker();
        hb.set_legacy_strict_status(true);
        hb.forget(PeerId::new(2));
        let _ = hb.status(PeerId::new(2), t(400));
    }
}
