//! # ifi-overlay — unstructured P2P overlay substrate
//!
//! The netFilter paper assumes "peers form an unstructured P2P system where
//! no global index structure is maintained" (§I) and recruits the more
//! stable peers to participate in the aggregation hierarchy (§III-A). This
//! crate provides that substrate:
//!
//! * [`Topology`] — undirected overlay graphs with the standard generators
//!   (random-regular, Erdős–Rényi G(n,m), Watts–Strogatz small-world, plus
//!   deterministic shapes for tests) and graph queries (BFS layers,
//!   connectivity, eccentricity estimates),
//! * [`churn`] — session-length models and churn schedules
//!   (join/leave/failure event streams for the DES),
//! * [`Overlay`] — the full membership view: which peers are *stable*
//!   (netFilter participants), and how every non-participant attaches to a
//!   participant that aggregates on its behalf,
//! * [`HeartbeatTracker`] — the periodic heartbeat bookkeeping (with the
//!   paper's `DEPTH` counter) that hierarchy repair builds on (§III-A.3).
//!
//! ```
//! use ifi_overlay::Topology;
//! use ifi_sim::DetRng;
//!
//! let mut rng = DetRng::new(42);
//! let topo = Topology::random_regular(100, 4, &mut rng);
//! assert!(topo.is_connected());
//! assert!(topo.peers().all(|p| topo.degree(p) >= 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod heartbeat;
mod overlay;
pub mod search;
mod topology;

pub use heartbeat::{HeartbeatConfig, HeartbeatTracker, NeighborStatus};
pub use overlay::{Overlay, StableSelection};
pub use topology::Topology;
