//! Undirected overlay graphs.

use std::collections::VecDeque;

use ifi_sim::{DetRng, PeerId};

/// An undirected, simple graph over peers `0..n`.
///
/// Adjacency lists are kept sorted and duplicate-free; there are no
/// self-loops. All generators take an explicit PRNG so topologies are
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    adj: Vec<Vec<PeerId>>,
}

impl Topology {
    /// An edgeless graph with `n` peers.
    pub fn empty(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
        }
    }

    /// A path `0 — 1 — … — n-1`. Deterministic; handy in tests.
    pub fn line(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_edge(PeerId::new(i - 1), PeerId::new(i));
        }
        t
    }

    /// A cycle over `n ≥ 3` peers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring requires at least 3 peers");
        let mut t = Topology::line(n);
        t.add_edge(PeerId::new(n - 1), PeerId::new(0));
        t
    }

    /// A star with peer 0 at the center.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_edge(PeerId::new(0), PeerId::new(i));
        }
        t
    }

    /// A complete `b`-ary tree laid out in breadth-first order: peer `i`'s
    /// parent is `(i-1)/b`. This mirrors the paper's evaluation parameter
    /// "number of downstream neighbors per peer `b`" (Table III, `b = 3`).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn balanced_tree(n: usize, b: usize) -> Self {
        assert!(b > 0, "balanced_tree requires b > 0");
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_edge(PeerId::new((i - 1) / b), PeerId::new(i));
        }
        t
    }

    /// A `rows × cols` grid in row-major order: peer `r·cols + c` links to
    /// its 4-neighborhood. Deterministic; the schedule-exploration harness
    /// uses small grids because they maximize same-time delivery ties
    /// (every interior peer has degree 4 and symmetric distances).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid requires rows > 0 and cols > 0");
        let mut t = Topology::empty(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    t.add_edge(PeerId::new(i), PeerId::new(i + 1));
                }
                if r + 1 < rows {
                    t.add_edge(PeerId::new(i), PeerId::new(i + cols));
                }
            }
        }
        t
    }

    /// An approximately `d`-regular random graph via the configuration
    /// model: `d` stubs per peer are paired uniformly; self-loops and
    /// parallel edges are discarded and patched by targeted rewiring, and a
    /// spanning pass guarantees connectivity.
    ///
    /// The result is connected with min degree ≥ `d - 1` in practice; exact
    /// regularity is not required by any consumer (the hierarchy only needs
    /// a connected unstructured overlay).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `d == 0` or `d >= n`.
    pub fn random_regular(n: usize, d: usize, rng: &mut DetRng) -> Self {
        assert!(n >= 2, "random_regular requires n >= 2");
        assert!(d > 0 && d < n, "random_regular requires 0 < d < n");
        let mut t = Topology::empty(n);
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, d)).collect();
        rng.shuffle(&mut stubs);
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if a != b {
                // add_edge ignores duplicates, so parallel pairings just
                // lower the degree slightly; we patch below.
                t.add_edge(PeerId::new(a), PeerId::new(b));
            }
        }
        // Patch low-degree peers by wiring them to random non-neighbors.
        for i in 0..n {
            let p = PeerId::new(i);
            let mut guard = 0;
            while t.degree(p) < d.saturating_sub(1).max(1) && guard < 16 * n {
                let q = PeerId::new(rng.below(n as u64) as usize);
                if q != p {
                    t.add_edge(p, q);
                }
                guard += 1;
            }
        }
        t.connect_components(rng);
        t
    }

    /// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly, then
    /// patched to be connected.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the number of possible edges.
    pub fn gnm(n: usize, m: usize, rng: &mut DetRng) -> Self {
        let max_edges = n * n.saturating_sub(1) / 2;
        assert!(m <= max_edges, "gnm: m = {m} exceeds max {max_edges}");
        let mut t = Topology::empty(n);
        let mut placed = 0;
        let mut guard = 0u64;
        while placed < m {
            guard += 1;
            assert!(
                guard < 200 * (m as u64 + 16),
                "gnm: too many rejections (graph nearly complete?)"
            );
            let a = rng.below(n as u64) as usize;
            let b = rng.below(n as u64) as usize;
            if a != b && t.add_edge(PeerId::new(a), PeerId::new(b)) {
                placed += 1;
            }
        }
        t.connect_components(rng);
        t
    }

    /// Barabási–Albert preferential attachment: peers join one at a time
    /// and wire to `m` existing peers with probability proportional to
    /// degree, yielding the power-law degree distribution measured in
    /// deployed unstructured P2P systems (Gnutella-style overlays).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n <= m`.
    pub fn barabasi_albert(n: usize, m: usize, rng: &mut DetRng) -> Self {
        assert!(m > 0, "barabasi_albert requires m > 0");
        assert!(n > m, "barabasi_albert requires n > m");
        let mut t = Topology::empty(n);
        // Seed clique of m+1 peers.
        for a in 0..=m {
            for b in (a + 1)..=m {
                t.add_edge(PeerId::new(a), PeerId::new(b));
            }
        }
        // Degree-proportional sampling via the repeated-endpoints trick:
        // every edge endpoint appears once in `endpoints`.
        let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m);
        for a in 0..=m {
            for _ in 0..m {
                endpoints.push(a);
            }
        }
        for i in (m + 1)..n {
            let mut targets = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m && guard < 64 * m {
                let pick = endpoints[rng.below(endpoints.len() as u64) as usize];
                if pick != i && !targets.contains(&pick) {
                    targets.push(pick);
                }
                guard += 1;
            }
            // Fallback for pathological rejection streaks.
            let mut probe = 0usize;
            while targets.len() < m {
                if probe != i && !targets.contains(&probe) {
                    targets.push(probe);
                }
                probe += 1;
            }
            for &tgt in &targets {
                t.add_edge(PeerId::new(i), PeerId::new(tgt));
                endpoints.push(i);
                endpoints.push(tgt);
            }
        }
        t
    }

    /// Watts–Strogatz small-world: ring lattice where each peer connects to
    /// its `k/2` nearest neighbors on each side, each edge rewired with
    /// probability `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd, zero, or `>= n`, or `beta ∉ [0, 1]`.
    pub fn small_world(n: usize, k: usize, beta: f64, rng: &mut DetRng) -> Self {
        assert!(k > 0 && k.is_multiple_of(2) && k < n, "small_world: bad k");
        assert!(
            (0.0..=1.0).contains(&beta),
            "small_world: beta out of range"
        );
        let mut t = Topology::empty(n);
        for i in 0..n {
            for j in 1..=(k / 2) {
                let a = PeerId::new(i);
                let mut b = PeerId::new((i + j) % n);
                if beta > 0.0 && rng.chance(beta) {
                    // Rewire to a uniform random non-neighbor.
                    for _ in 0..32 {
                        let cand = PeerId::new(rng.below(n as u64) as usize);
                        if cand != a && !t.has_edge(a, cand) {
                            b = cand;
                            break;
                        }
                    }
                }
                t.add_edge(a, b);
            }
        }
        t.connect_components(rng);
        t
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.adj.len()
    }

    /// Iterates over all peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.adj.len()).map(PeerId::new)
    }

    /// The sorted neighbor list of `p`.
    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        &self.adj[p.index()]
    }

    /// Degree of `p`.
    pub fn degree(&self, p: PeerId) -> usize {
        self.adj[p.index()].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: PeerId, b: PeerId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Adds the undirected edge `{a, b}`. Returns `false` if it already
    /// existed (or `a == b`), `true` if newly added.
    pub fn add_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        if a == b || self.has_edge(a, b) {
            return false;
        }
        let ai = self.adj[a.index()].binary_search(&b).unwrap_err();
        self.adj[a.index()].insert(ai, b);
        let bi = self.adj[b.index()].binary_search(&a).unwrap_err();
        self.adj[b.index()].insert(bi, a);
        true
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether it
    /// was removed.
    pub fn remove_edge(&mut self, a: PeerId, b: PeerId) -> bool {
        let Ok(ai) = self.adj[a.index()].binary_search(&b) else {
            return false;
        };
        self.adj[a.index()].remove(ai);
        let bi = self.adj[b.index()]
            .binary_search(&a)
            .expect("asymmetric adjacency");
        self.adj[b.index()].remove(bi);
        true
    }

    /// BFS hop distance from `root` to every peer (`None` = unreachable).
    /// This is exactly the paper's `d(i)` — "the length of the shortest
    /// path in terms of logical hops from the root" (§III-A.1).
    pub fn bfs_depths(&self, root: PeerId) -> Vec<Option<u32>> {
        self.bfs_depths_filtered(root, |_| true)
    }

    /// BFS depths restricted to peers satisfying `include` (used to build
    /// hierarchies over the *stable* subset only). `root` must satisfy
    /// `include` itself.
    pub fn bfs_depths_filtered(
        &self,
        root: PeerId,
        include: impl Fn(PeerId) -> bool,
    ) -> Vec<Option<u32>> {
        let mut depth = vec![None; self.adj.len()];
        if !include(root) {
            return depth;
        }
        depth[root.index()] = Some(0);
        let mut q = VecDeque::from([root]);
        while let Some(u) = q.pop_front() {
            let du = depth[u.index()].expect("queued peer must have a depth");
            for &v in self.neighbors(u) {
                if include(v) && depth[v.index()].is_none() {
                    depth[v.index()] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        depth
    }

    /// Whether the graph is connected (vacuously true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.adj.len() <= 1 {
            return true;
        }
        self.bfs_depths(PeerId::new(0)).iter().all(Option::is_some)
    }

    /// Connected components as lists of peers (each sorted; components
    /// ordered by smallest member).
    pub fn components(&self) -> Vec<Vec<PeerId>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::from([PeerId::new(s)]);
            seen[s] = true;
            while let Some(u) = q.pop_front() {
                comp.push(u);
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        q.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Joins all components by adding one random edge between consecutive
    /// components. No-op when already connected.
    pub fn connect_components(&mut self, rng: &mut DetRng) {
        let comps = self.components();
        for w in comps.windows(2) {
            let a = w[0][rng.below(w[0].len() as u64) as usize];
            let b = w[1][rng.below(w[1].len() as u64) as usize];
            self.add_edge(a, b);
        }
    }

    /// Eccentricity of `root`: the maximum BFS depth over reachable peers.
    pub fn eccentricity(&self, root: PeerId) -> u32 {
        self.bfs_depths(root)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0)
    }

    /// Lower-bound estimate of the diameter from `samples` random BFS runs.
    pub fn diameter_estimate(&self, samples: usize, rng: &mut DetRng) -> u32 {
        let n = self.adj.len();
        if n == 0 {
            return 0;
        }
        (0..samples)
            .map(|_| self.eccentricity(PeerId::new(rng.below(n as u64) as usize)))
            .max()
            .unwrap_or(0)
    }

    /// Asserts internal invariants (sorted, symmetric, simple). Cheap
    /// enough to run in tests after every mutation burst.
    pub fn check_invariants(&self) {
        for (i, nbrs) in self.adj.iter().enumerate() {
            let p = PeerId::new(i);
            assert!(
                nbrs.windows(2).all(|w| w[0] < w[1]),
                "adjacency of {p} not sorted/unique"
            );
            for &q in nbrs {
                assert_ne!(q, p, "self-loop at {p}");
                assert!(
                    self.adj[q.index()].binary_search(&p).is_ok(),
                    "edge {p}-{q} not symmetric"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn line_ring_star_shapes() {
        let line = Topology::line(5);
        assert_eq!(line.edge_count(), 4);
        assert_eq!(line.degree(PeerId::new(0)), 1);
        assert_eq!(line.degree(PeerId::new(2)), 2);

        let ring = Topology::ring(5);
        assert_eq!(ring.edge_count(), 5);
        assert!(ring.peers().all(|p| ring.degree(p) == 2));

        let star = Topology::star(5);
        assert_eq!(star.degree(PeerId::new(0)), 4);
        assert!(star.is_connected());
    }

    #[test]
    fn grid_shape_and_connectivity() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.peer_count(), 12);
        // rows·(cols-1) horizontal + (rows-1)·cols vertical edges.
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        // Corner, edge, and interior degrees.
        assert_eq!(g.degree(PeerId::new(0)), 2);
        assert_eq!(g.degree(PeerId::new(1)), 3);
        assert_eq!(g.degree(PeerId::new(5)), 4);
        assert!(g.is_connected());
        g.check_invariants();
        // Degenerate 1×n grid is the line.
        assert_eq!(Topology::grid(1, 6), Topology::line(6));
    }

    #[test]
    fn balanced_tree_parenting() {
        let t = Topology::balanced_tree(13, 3);
        assert_eq!(t.edge_count(), 12);
        // Peer 4's parent is (4-1)/3 = 1.
        assert!(t.has_edge(PeerId::new(4), PeerId::new(1)));
        assert!(t.is_connected());
        // Root has exactly b children.
        assert_eq!(t.degree(PeerId::new(0)), 3);
    }

    #[test]
    fn add_remove_edge_round_trip() {
        let mut t = Topology::empty(3);
        assert!(t.add_edge(PeerId::new(0), PeerId::new(2)));
        assert!(!t.add_edge(PeerId::new(2), PeerId::new(0)), "duplicate");
        assert!(!t.add_edge(PeerId::new(1), PeerId::new(1)), "self-loop");
        assert!(t.has_edge(PeerId::new(0), PeerId::new(2)));
        assert!(t.remove_edge(PeerId::new(0), PeerId::new(2)));
        assert!(!t.remove_edge(PeerId::new(0), PeerId::new(2)));
        assert_eq!(t.edge_count(), 0);
        t.check_invariants();
    }

    #[test]
    fn random_regular_is_connected_and_near_regular() {
        let mut r = rng();
        for &(n, d) in &[(50usize, 4usize), (200, 3), (1000, 4)] {
            let t = Topology::random_regular(n, d, &mut r);
            t.check_invariants();
            assert!(t.is_connected(), "n={n} d={d} disconnected");
            let min_deg = t.peers().map(|p| t.degree(p)).min().unwrap();
            assert!(min_deg >= 1, "isolated peer in n={n} d={d}");
            let avg: f64 = t.peers().map(|p| t.degree(p)).sum::<usize>() as f64 / n as f64;
            assert!(
                (avg - d as f64).abs() < 1.0,
                "avg degree {avg} far from {d}"
            );
        }
    }

    #[test]
    fn gnm_has_exactly_m_edges_before_patching() {
        let mut r = rng();
        let t = Topology::gnm(100, 300, &mut r);
        t.check_invariants();
        assert!(t.edge_count() >= 300);
        assert!(t.is_connected());
    }

    #[test]
    fn small_world_variants() {
        let mut r = rng();
        for &beta in &[0.0, 0.1, 1.0] {
            let t = Topology::small_world(60, 4, beta, &mut r);
            t.check_invariants();
            assert!(t.is_connected(), "beta={beta}");
        }
        // beta = 0 is exactly the ring lattice.
        let t = Topology::small_world(10, 2, 0.0, &mut r);
        assert_eq!(t.edge_count(), 10);
    }

    #[test]
    fn barabasi_albert_is_connected_with_heavy_tail() {
        let mut r = rng();
        let t = Topology::barabasi_albert(500, 3, &mut r);
        t.check_invariants();
        assert!(t.is_connected(), "BA graphs grow connected by construction");
        // Edge count: seed clique C(4,2)=6 plus ~3 per arrival.
        assert!(t.edge_count() >= 6 + (500 - 4) * 3 - 50);
        // Heavy tail: the max degree dwarfs the minimum (hubs exist).
        let max_deg = t.peers().map(|p| t.degree(p)).max().unwrap();
        let min_deg = t.peers().map(|p| t.degree(p)).min().unwrap();
        assert!(min_deg >= 3);
        assert!(
            max_deg >= 8 * min_deg,
            "no hubs: max {max_deg}, min {min_deg}"
        );
    }

    #[test]
    #[should_panic(expected = "requires n > m")]
    fn barabasi_albert_rejects_tiny_n() {
        let _ = Topology::barabasi_albert(3, 3, &mut rng());
    }

    #[test]
    fn bfs_depths_on_line() {
        let t = Topology::line(4);
        let d = t.bfs_depths(PeerId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(t.eccentricity(PeerId::new(0)), 3);
        assert_eq!(t.eccentricity(PeerId::new(1)), 2);
    }

    #[test]
    fn bfs_filtered_excludes_peers() {
        // 0-1-2-3 with 1 excluded: 2 and 3 unreachable from 0.
        let t = Topology::line(4);
        let d = t.bfs_depths_filtered(PeerId::new(0), |p| p.index() != 1);
        assert_eq!(d, vec![Some(0), None, None, None]);
        // Excluded root reaches nothing.
        let d = t.bfs_depths_filtered(PeerId::new(0), |p| p.index() != 0);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn components_and_connect() {
        let mut t = Topology::empty(6);
        t.add_edge(PeerId::new(0), PeerId::new(1));
        t.add_edge(PeerId::new(2), PeerId::new(3));
        assert_eq!(t.components().len(), 4); // {0,1},{2,3},{4},{5}
        let mut r = rng();
        t.connect_components(&mut r);
        assert!(t.is_connected());
        t.check_invariants();
    }

    #[test]
    fn diameter_estimate_on_ring() {
        let t = Topology::ring(10);
        let mut r = rng();
        assert_eq!(t.diameter_estimate(5, &mut r), 5);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(Topology::empty(0).is_connected());
        assert!(Topology::empty(1).is_connected());
        assert!(!Topology::empty(2).is_connected());
        assert_eq!(Topology::empty(0).diameter_estimate(3, &mut rng()), 0);
    }

    #[test]
    #[should_panic(expected = "ring requires")]
    fn ring_too_small_panics() {
        let _ = Topology::ring(2);
    }

    #[test]
    #[should_panic(expected = "bad k")]
    fn small_world_odd_k_panics() {
        let _ = Topology::small_world(10, 3, 0.1, &mut rng());
    }
}
