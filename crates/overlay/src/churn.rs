//! Peer churn: session-length models and churn schedules.
//!
//! The paper sidesteps churn during netFilter runs by recruiting "peers that
//! are more stable (e.g., being online for a longer time)" (§III-A), citing
//! the well-known observation that P2P session lengths are heavy-tailed so
//! long-lived peers exist and are identifiable. This module provides
//! session-length models, a way to score stability, and a concrete
//! [`ChurnSchedule`] of kill/revive events for the DES — used to exercise
//! hierarchy repair (§III-A.3) and failure-injection tests.

use ifi_sim::{DetRng, Duration, PeerId, SimTime};

/// A model of how long peers stay online and offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionModel {
    /// Exponentially distributed on/off times with the given means — the
    /// memoryless baseline.
    Exponential {
        /// Mean online duration.
        mean_on: Duration,
        /// Mean offline duration.
        mean_off: Duration,
    },
    /// Pareto (heavy-tailed) online times with exponential offline times.
    /// This matches measured P2P session distributions: most sessions are
    /// short, a few are very long — exactly why stable peers exist.
    ParetoOn {
        /// Scale (minimum) online duration.
        scale: Duration,
        /// Tail index; must be `> 1` for a finite mean.
        alpha: f64,
        /// Mean offline duration.
        mean_off: Duration,
    },
    /// Weibull online times with exponential offline times — the classic
    /// fit for measured P2P session lengths (shape `< 1` gives the
    /// heavy-but-not-power-law tail; shape `= 1` degenerates to
    /// [`Exponential`](Self::Exponential)).
    Weibull {
        /// Scale parameter of the online-time distribution.
        scale: Duration,
        /// Shape parameter; `< 1` is heavy-tailed.
        shape: f64,
        /// Mean offline duration.
        mean_off: Duration,
    },
}

impl SessionModel {
    /// Samples one online-session length.
    pub fn sample_on(&self, rng: &mut DetRng) -> Duration {
        match *self {
            SessionModel::Exponential { mean_on, .. } => {
                Duration::from_micros(rng.exponential(mean_on.as_micros() as f64).max(1.0) as u64)
            }
            SessionModel::ParetoOn { scale, alpha, .. } => {
                assert!(alpha > 1.0, "pareto tail index must exceed 1");
                let u = (1.0 - rng.unit_f64()).max(f64::MIN_POSITIVE);
                let x = scale.as_micros() as f64 * u.powf(-1.0 / alpha);
                // Truncate at 1000x scale to bound event horizons.
                Duration::from_micros(x.min(scale.as_micros() as f64 * 1e3) as u64)
            }
            SessionModel::Weibull { scale, shape, .. } => {
                Duration::from_micros(rng.weibull(scale.as_micros() as f64, shape).max(1.0) as u64)
            }
        }
    }

    /// Samples one offline gap.
    pub fn sample_off(&self, rng: &mut DetRng) -> Duration {
        let mean_off = match *self {
            SessionModel::Exponential { mean_off, .. } => mean_off,
            SessionModel::ParetoOn { mean_off, .. } => mean_off,
            SessionModel::Weibull { mean_off, .. } => mean_off,
        };
        Duration::from_micros(rng.exponential(mean_off.as_micros() as f64).max(1.0) as u64)
    }
}

/// One churn event in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Peer goes down at this instant.
    Down(SimTime, PeerId),
    /// Peer comes back up at this instant.
    Up(SimTime, PeerId),
}

impl ChurnEvent {
    /// The instant the event fires.
    pub fn time(self) -> SimTime {
        match self {
            ChurnEvent::Down(t, _) | ChurnEvent::Up(t, _) => t,
        }
    }
}

/// A precomputed, time-ordered stream of churn events over a horizon,
/// together with each peer's total online time (its *stability score*).
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
    online_time: Vec<Duration>,
    horizon: SimTime,
}

impl ChurnSchedule {
    /// Simulates on/off alternation for every peer up to `horizon`.
    /// All peers start online at `t = 0`.
    pub fn generate(n: usize, model: SessionModel, horizon: SimTime, rng: &mut DetRng) -> Self {
        let mut events = Vec::new();
        let mut online_time = vec![Duration::ZERO; n];
        #[allow(clippy::needless_range_loop)] // i indexes both peer ids and online_time
        for i in 0..n {
            let peer = PeerId::new(i);
            let mut t = SimTime::ZERO;
            let mut up = true;
            loop {
                let span = if up {
                    model.sample_on(rng)
                } else {
                    model.sample_off(rng)
                };
                let end = t + span;
                if up {
                    let credited = if end > horizon { horizon - t } else { span };
                    online_time[i] = online_time[i] + credited;
                }
                if end >= horizon {
                    break;
                }
                events.push(if up {
                    ChurnEvent::Down(end, peer)
                } else {
                    ChurnEvent::Up(end, peer)
                });
                t = end;
                up = !up;
            }
        }
        events.sort_by_key(|e| e.time());
        ChurnSchedule {
            events,
            online_time,
            horizon,
        }
    }

    /// A schedule from an explicit event list, for tests that pin exact
    /// kill/revive instants (e.g. a revival inside one heartbeat interval).
    /// Events are sorted by time; online time is replayed per peer, with
    /// every peer starting online at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if an event lies beyond `horizon`, names a peer `>= n`, or
    /// breaks a peer's down/up alternation (down while down, up while up).
    pub fn from_events(n: usize, mut events: Vec<ChurnEvent>, horizon: SimTime) -> Self {
        events.sort_by_key(|e| e.time());
        let mut online_time = vec![Duration::ZERO; n];
        let mut up_since = vec![Some(SimTime::ZERO); n];
        for &e in &events {
            assert!(e.time() < horizon, "churn event beyond the horizon");
            match e {
                ChurnEvent::Down(t, p) => {
                    let since = up_since[p.index()].expect("down event for a peer already down");
                    online_time[p.index()] = online_time[p.index()] + (t - since);
                    up_since[p.index()] = None;
                }
                ChurnEvent::Up(t, p) => {
                    assert!(
                        up_since[p.index()].is_none(),
                        "up event for a peer already up"
                    );
                    up_since[p.index()] = Some(t);
                }
            }
        }
        for (i, since) in up_since.into_iter().enumerate() {
            if let Some(t) = since {
                online_time[i] = online_time[i] + (horizon - t);
            }
        }
        ChurnSchedule {
            events,
            online_time,
            horizon,
        }
    }

    /// A schedule with no churn at all.
    pub fn quiet(n: usize, horizon: SimTime) -> Self {
        ChurnSchedule {
            events: Vec::new(),
            online_time: vec![horizon - SimTime::ZERO; n],
            horizon,
        }
    }

    /// The time-ordered events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Total online time of `peer` within the horizon — the stability score
    /// used for participant recruitment.
    pub fn online_time(&self, peer: PeerId) -> Duration {
        self.online_time[peer.index()]
    }

    /// The schedule's horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Peers ranked most-stable-first (by total online time, ties by id).
    pub fn stability_ranking(&self) -> Vec<PeerId> {
        let mut ids: Vec<PeerId> = (0..self.online_time.len()).map(PeerId::new).collect();
        ids.sort_by(|&a, &b| {
            self.online_time[b.index()]
                .cmp(&self.online_time[a.index()])
                .then(a.cmp(&b))
        });
        ids
    }

    /// The most stable `k` peers (the paper's netFilter participants).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the peer count.
    pub fn most_stable(&self, k: usize) -> Vec<PeerId> {
        assert!(k <= self.online_time.len(), "k exceeds peer count");
        let mut top: Vec<PeerId> = self.stability_ranking().into_iter().take(k).collect();
        top.sort_unstable();
        top
    }

    /// Installs every event into a DES world via the provided callbacks.
    /// (Generic so it does not depend on the concrete protocol type.)
    pub fn install(
        &self,
        mut kill: impl FnMut(SimTime, PeerId),
        mut revive: impl FnMut(SimTime, PeerId),
    ) {
        for &e in &self.events {
            match e {
                ChurnEvent::Down(t, p) => kill(t, p),
                ChurnEvent::Up(t, p) => revive(t, p),
            }
        }
    }

    /// Schedules every event directly into a [`World`](ifi_sim::World) as
    /// kill/revive kernel events, so a run executes under this schedule.
    pub fn install_world<P: ifi_sim::Protocol>(&self, world: &mut ifi_sim::World<P>) {
        for &e in &self.events {
            match e {
                ChurnEvent::Down(t, p) => world.schedule_kill(t, p),
                ChurnEvent::Up(t, p) => world.schedule_revive(t, p),
            }
        }
    }

    /// A copy of this schedule with every event touching one of `peers`
    /// removed — the excluded peers stay online for the whole horizon (and
    /// score maximal stability). Used to protect peers whose failures the
    /// experiment injects explicitly (e.g. a root killed at a pinned time).
    pub fn excluding(&self, peers: &[PeerId]) -> ChurnSchedule {
        let events = self
            .events
            .iter()
            .copied()
            .filter(|e| match e {
                ChurnEvent::Down(_, p) | ChurnEvent::Up(_, p) => !peers.contains(p),
            })
            .collect();
        let mut online_time = self.online_time.clone();
        for p in peers {
            if p.index() < online_time.len() {
                online_time[p.index()] = self.horizon - SimTime::ZERO;
            }
        }
        ChurnSchedule {
            events,
            online_time,
            horizon: self.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(77)
    }

    fn model() -> SessionModel {
        SessionModel::Exponential {
            mean_on: Duration::from_secs(100),
            mean_off: Duration::from_secs(50),
        }
    }

    #[test]
    fn events_are_ordered_and_alternate_per_peer() {
        let sched =
            ChurnSchedule::generate(20, model(), SimTime::from_micros(1_000_000_000), &mut rng());
        let ts: Vec<_> = sched.events().iter().map(|e| e.time()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "events out of order");

        // Per peer: strict Down/Up alternation starting with Down.
        for i in 0..20 {
            let p = PeerId::new(i);
            let mine: Vec<_> = sched
                .events()
                .iter()
                .filter(|e| matches!(e, ChurnEvent::Down(_, q) | ChurnEvent::Up(_, q) if *q == p))
                .collect();
            for (k, e) in mine.iter().enumerate() {
                let is_down = matches!(e, ChurnEvent::Down(..));
                assert_eq!(is_down, k % 2 == 0, "peer {p} event {k} out of phase");
            }
        }
    }

    #[test]
    fn online_time_bounded_by_horizon() {
        let horizon = SimTime::from_micros(500_000_000);
        let sched = ChurnSchedule::generate(50, model(), horizon, &mut rng());
        for i in 0..50 {
            let ot = sched.online_time(PeerId::new(i));
            assert!(ot <= horizon - SimTime::ZERO);
            assert!(ot > Duration::ZERO, "everyone starts online");
        }
    }

    #[test]
    fn quiet_schedule_is_fully_online() {
        let horizon = SimTime::from_micros(1_000);
        let s = ChurnSchedule::quiet(3, horizon);
        assert!(s.events().is_empty());
        assert_eq!(s.online_time(PeerId::new(2)), Duration::from_micros(1_000));
    }

    #[test]
    fn most_stable_returns_highest_online_time() {
        let sched =
            ChurnSchedule::generate(30, model(), SimTime::from_micros(2_000_000_000), &mut rng());
        let top = sched.most_stable(5);
        assert_eq!(top.len(), 5);
        let worst_top = top.iter().map(|&p| sched.online_time(p)).min().unwrap();
        let rest_best = (0..30)
            .map(PeerId::new)
            .filter(|p| !top.contains(p))
            .map(|p| sched.online_time(p))
            .max()
            .unwrap();
        assert!(worst_top >= rest_best);
    }

    #[test]
    fn pareto_sessions_are_heavy_tailed() {
        let m = SessionModel::ParetoOn {
            scale: Duration::from_secs(10),
            alpha: 1.5,
            mean_off: Duration::from_secs(10),
        };
        let mut r = rng();
        let xs: Vec<u64> = (0..5000).map(|_| m.sample_on(&mut r).as_micros()).collect();
        let min = *xs.iter().min().unwrap();
        assert!(min >= Duration::from_secs(10).as_micros(), "below scale");
        // Tail: some sessions are at least 10x the scale.
        assert!(xs.iter().any(|&x| x > 100_000_000));
    }

    #[test]
    fn install_replays_all_events() {
        let sched =
            ChurnSchedule::generate(10, model(), SimTime::from_micros(800_000_000), &mut rng());
        let mut downs = 0;
        let mut ups = 0;
        sched.install(|_, _| downs += 1, |_, _| ups += 1);
        let total = sched.events().len();
        assert_eq!(downs + ups, total);
        assert!(downs >= ups, "cannot revive before going down");
    }

    #[test]
    fn weibull_sessions_sample_and_alternate() {
        let m = SessionModel::Weibull {
            scale: Duration::from_secs(60),
            shape: 0.6,
            mean_off: Duration::from_secs(20),
        };
        let sched = ChurnSchedule::generate(25, m, SimTime::from_micros(2_000_000_000), &mut rng());
        assert!(
            !sched.events().is_empty(),
            "weibull churn produced no events"
        );
        for i in 0..25 {
            assert!(sched.online_time(PeerId::new(i)) > Duration::ZERO);
        }
    }

    #[test]
    fn excluding_removes_only_those_peers_and_maxes_their_stability() {
        let horizon = SimTime::from_micros(1_000_000_000);
        let sched = ChurnSchedule::generate(12, model(), horizon, &mut rng());
        let shielded = [PeerId::new(0), PeerId::new(7)];
        let filtered = sched.excluding(&shielded);
        for e in filtered.events() {
            let p = match e {
                ChurnEvent::Down(_, p) | ChurnEvent::Up(_, p) => *p,
            };
            assert!(!shielded.contains(&p), "event for excluded peer {p}");
        }
        for p in shielded {
            assert_eq!(filtered.online_time(p), horizon - SimTime::ZERO);
        }
        // Everyone else keeps their original events and scores.
        let kept = |s: &ChurnSchedule| {
            s.events()
                .iter()
                .filter(|e| match e {
                    ChurnEvent::Down(_, p) | ChurnEvent::Up(_, p) => !shielded.contains(p),
                })
                .count()
        };
        assert_eq!(kept(&sched), filtered.events().len());
        assert_eq!(
            sched.online_time(PeerId::new(3)),
            filtered.online_time(PeerId::new(3))
        );
    }

    #[test]
    fn from_events_sorts_and_replays_online_time() {
        let horizon = SimTime::from_micros(10_000);
        let p = PeerId::new(1);
        // Deliberately out of order; peer 1 is down for 2000us total.
        let events = vec![
            ChurnEvent::Up(SimTime::from_micros(5_000), p),
            ChurnEvent::Down(SimTime::from_micros(3_000), p),
        ];
        let s = ChurnSchedule::from_events(3, events, horizon);
        let ts: Vec<_> = s.events().iter().map(|e| e.time()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.online_time(p), Duration::from_micros(8_000));
        assert_eq!(s.online_time(PeerId::new(0)), Duration::from_micros(10_000));
        assert_eq!(s.horizon(), horizon);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn from_events_rejects_double_down() {
        let p = PeerId::new(0);
        let events = vec![
            ChurnEvent::Down(SimTime::from_micros(1), p),
            ChurnEvent::Down(SimTime::from_micros(2), p),
        ];
        let _ = ChurnSchedule::from_events(1, events, SimTime::from_micros(10));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ChurnSchedule::generate(
            15,
            model(),
            SimTime::from_micros(1e9 as u64),
            &mut DetRng::new(5),
        );
        let b = ChurnSchedule::generate(
            15,
            model(),
            SimTime::from_micros(1e9 as u64),
            &mut DetRng::new(5),
        );
        assert_eq!(a.events(), b.events());
    }
}
