//! Data-set generation: the paper's §V workload.

use ifi_sim::{DetRng, PeerId};

use crate::zipf::ZipfSampler;

/// Identifier of a data item (a song, keyword, flow destination, …).
///
/// The paper represents item identifiers as 4-byte integers on the wire
/// (`s_i = 4` bytes, Table III); we use `u64` in memory so scenario
/// generators can encode composite items (e.g. keyword *pairs*) without
/// collisions, and let the wire-size configuration decide encoded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ItemId(pub u64);

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// Parameters of the synthetic workload (Table III defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadParams {
    /// `N` — number of peers.
    pub peers: usize,
    /// `n` — number of distinct items in the universe.
    pub items: u64,
    /// Instances generated per distinct item (paper: `10·n` total).
    pub instances_per_item: u64,
    /// `θ` — Zipf skew of item frequencies.
    pub theta: f64,
}

impl Default for WorkloadParams {
    /// The paper's defaults: `N = 1000`, `n = 10^5`, `10·n` instances,
    /// `θ = 1`.
    fn default() -> Self {
        WorkloadParams {
            peers: 1000,
            items: 100_000,
            instances_per_item: 10,
            theta: 1.0,
        }
    }
}

/// The distributed data set: each peer's local item set `A_i` with local
/// values `v_i^x`.
///
/// §V: *"We generate `10·n` instances of these items with their frequencies
/// (global values) following zipf-distribution. We then randomly distribute
/// these `10·n` items to the `N` nodes."*
#[derive(Debug, Clone)]
pub struct SystemData {
    /// `local[p]` = sorted `(item, local value)` pairs with positive values.
    local: Vec<Vec<(ItemId, u64)>>,
    /// `n` — size of the item universe (≥ number of items actually drawn).
    universe: u64,
}

impl SystemData {
    /// Generates the paper's workload deterministically from `seed`.
    ///
    /// Each of the `instances_per_item · items` instances draws its item
    /// from `Zipf(θ)` over the universe and its holder uniformly over the
    /// peers; a peer's local value for an item is its instance count.
    ///
    /// # Panics
    ///
    /// Panics if `peers == 0` or `items == 0`.
    pub fn generate(params: &WorkloadParams, seed: u64) -> Self {
        assert!(params.peers > 0, "need at least one peer");
        assert!(params.items > 0, "need at least one item");
        let mut rng = DetRng::new(seed).derive(0x317E);
        let zipf = ZipfSampler::new(params.items as usize, params.theta);
        let total_instances = params.items * params.instances_per_item;

        let mut raw: Vec<Vec<u64>> = vec![Vec::new(); params.peers];
        for _ in 0..total_instances {
            let item = zipf.sample(&mut rng) as u64;
            let peer = rng.below(params.peers as u64) as usize;
            raw[peer].push(item);
        }
        let local = raw
            .into_iter()
            .map(|mut items| {
                items.sort_unstable();
                let mut out: Vec<(ItemId, u64)> = Vec::new();
                for item in items {
                    match out.last_mut() {
                        Some((last, count)) if last.0 == item => *count += 1,
                        _ => out.push((ItemId(item), 1)),
                    }
                }
                out
            })
            .collect();
        SystemData {
            local,
            universe: params.items,
        }
    }

    /// Generates the workload with the paper's **replica-split** placement
    /// (the reading of §V that keeps "the number of items on each peer is
    /// `10·n/N`" true): every item's *global value* follows the Zipf
    /// apportionment of `instances_per_item · items` total mass (floored at
    /// 1 so all `n` items exist), and that value is split over up to
    /// `instances_per_item` equal-share instances placed at uniformly
    /// random peers.
    ///
    /// Compared with [`SystemData::generate`] (which draws each instance's
    /// item identity from the Zipf distribution), this keeps per-peer
    /// distinct counts — and hence the naive baseline's cost — from
    /// collapsing at high skew, matching the paper's Figure 7/8 setup.
    /// DESIGN.md discusses the two placements.
    ///
    /// # Panics
    ///
    /// Panics if `peers == 0` or `items == 0`.
    pub fn generate_paper(params: &WorkloadParams, seed: u64) -> Self {
        assert!(params.peers > 0, "need at least one peer");
        assert!(params.items > 0, "need at least one item");
        let mut rng = DetRng::new(seed).derive(0x9A_9E12);
        let zipf = ZipfSampler::new(params.items as usize, params.theta);
        let total = params.items * params.instances_per_item;
        let values = zipf.apportion(total);

        let mut local: Vec<Vec<(ItemId, u64)>> = vec![Vec::new(); params.peers];
        for (k, &apportioned) in values.iter().enumerate() {
            let value = apportioned.max(1); // every item exists somewhere
            let copies = value.min(params.instances_per_item).max(1);
            let base = value / copies;
            let mut remainder = value % copies;
            for _ in 0..copies {
                let share = base + if remainder > 0 { 1 } else { 0 };
                remainder = remainder.saturating_sub(1);
                let peer = rng.below(params.peers as u64) as usize;
                local[peer].push((ItemId(k as u64), share));
            }
        }
        SystemData::from_local_sets(local, params.items)
    }

    /// Wraps explicit per-peer local item sets (scenario generators use
    /// this). Each peer's list is sorted and coalesced; zero values are
    /// dropped.
    pub fn from_local_sets(local: Vec<Vec<(ItemId, u64)>>, universe: u64) -> Self {
        let local = local
            .into_iter()
            .map(|mut items| {
                items.sort_unstable_by_key(|&(id, _)| id);
                let mut out: Vec<(ItemId, u64)> = Vec::new();
                for (id, v) in items {
                    if v == 0 {
                        continue;
                    }
                    match out.last_mut() {
                        Some((last, acc)) if *last == id => *acc += v,
                        _ => out.push((id, v)),
                    }
                }
                out
            })
            .collect();
        SystemData { local, universe }
    }

    /// `N` — number of peers.
    pub fn peer_count(&self) -> usize {
        self.local.len()
    }

    /// `n` — size of the item universe.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Peer `p`'s local item set, sorted by item id, values all positive.
    pub fn local_items(&self, p: PeerId) -> &[(ItemId, u64)] {
        &self.local[p.index()]
    }

    /// Peer `p`'s local value for `item` (0 if absent) — `v_i^x`.
    pub fn local_value(&self, p: PeerId, item: ItemId) -> u64 {
        let items = &self.local[p.index()];
        items
            .binary_search_by_key(&item, |&(id, _)| id)
            .map(|i| items[i].1)
            .unwrap_or(0)
    }

    /// `v` — the summation over all local values of all items (§IV).
    pub fn total_value(&self) -> u64 {
        self.local
            .iter()
            .flat_map(|items| items.iter())
            .map(|&(_, v)| v)
            .sum()
    }

    /// `o` — average number of distinct items per peer.
    pub fn avg_distinct_per_peer(&self) -> f64 {
        if self.local.is_empty() {
            return 0.0;
        }
        self.local.iter().map(Vec::len).sum::<usize>() as f64 / self.local.len() as f64
    }

    /// Number of distinct items present anywhere in the system.
    pub fn distinct_items(&self) -> usize {
        let mut ids: Vec<ItemId> = self
            .local
            .iter()
            .flat_map(|items| items.iter().map(|&(id, _)| id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadParams {
        WorkloadParams {
            peers: 20,
            items: 500,
            instances_per_item: 10,
            theta: 1.0,
        }
    }

    #[test]
    fn conserves_total_mass() {
        let data = SystemData::generate(&small(), 1);
        assert_eq!(data.total_value(), 500 * 10);
    }

    #[test]
    fn per_peer_load_is_roughly_uniform() {
        let data = SystemData::generate(&small(), 2);
        let per_peer_mass: Vec<u64> = (0..20)
            .map(|i| {
                data.local_items(PeerId::new(i))
                    .iter()
                    .map(|&(_, v)| v)
                    .sum()
            })
            .collect();
        let expect = 5000 / 20;
        for (i, &m) in per_peer_mass.iter().enumerate() {
            assert!(
                (m as i64 - expect as i64).unsigned_abs() < 150,
                "peer {i} holds {m}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn local_sets_are_sorted_positive() {
        let data = SystemData::generate(&small(), 3);
        for i in 0..20 {
            let items = data.local_items(PeerId::new(i));
            assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(items.iter().all(|&(_, v)| v > 0));
        }
    }

    #[test]
    fn paper_o_parameter_matches() {
        // Table III: N=1000, n=1e5 → o ≈ 1000 (slightly below because
        // popular items collide within a peer).
        let params = WorkloadParams {
            peers: 100,
            items: 10_000,
            instances_per_item: 10,
            theta: 1.0,
        };
        let data = SystemData::generate(&params, 4);
        let o = data.avg_distinct_per_peer();
        let ideal = (10_000.0 * 10.0) / 100.0;
        // The paper quotes o = 10n/N exactly; in reality popular Zipf items
        // collide within a peer, so realized o sits below the ideal.
        assert!(o > 0.25 * ideal && o <= ideal, "o = {o}, ideal {ideal}");
    }

    #[test]
    fn skew_concentrates_mass_on_top_items() {
        let skewed = SystemData::generate(
            &WorkloadParams {
                theta: 2.0,
                ..small()
            },
            5,
        );
        // Item 0 (rank 1) should hold a large share of all 5000 units.
        let item0: u64 = (0..20)
            .map(|i| skewed.local_value(PeerId::new(i), ItemId(0)))
            .sum();
        assert!(item0 > 2500, "rank-1 item holds only {item0}");
    }

    #[test]
    fn local_value_lookup() {
        let data = SystemData::from_local_sets(
            vec![vec![(ItemId(5), 2), (ItemId(1), 3)], vec![(ItemId(5), 7)]],
            10,
        );
        assert_eq!(data.local_value(PeerId::new(0), ItemId(1)), 3);
        assert_eq!(data.local_value(PeerId::new(0), ItemId(5)), 2);
        assert_eq!(data.local_value(PeerId::new(0), ItemId(9)), 0);
        assert_eq!(data.local_value(PeerId::new(1), ItemId(5)), 7);
        assert_eq!(data.distinct_items(), 2);
    }

    #[test]
    fn from_local_sets_coalesces_and_drops_zeros() {
        let data = SystemData::from_local_sets(
            vec![vec![(ItemId(3), 1), (ItemId(3), 4), (ItemId(2), 0)]],
            5,
        );
        assert_eq!(data.local_items(PeerId::new(0)), &[(ItemId(3), 5)]);
    }

    #[test]
    fn paper_placement_keeps_all_items_present() {
        for &theta in &[0.0, 1.0, 3.0, 5.0] {
            let data = SystemData::generate_paper(&WorkloadParams { theta, ..small() }, 6);
            assert_eq!(
                data.distinct_items(),
                500,
                "θ = {theta}: every item must exist somewhere"
            );
            // Total mass ≥ the nominal 10·n (the floor can only add).
            assert!(data.total_value() >= 5_000);
        }
    }

    #[test]
    fn paper_placement_per_peer_distinct_does_not_collapse_at_high_skew() {
        let params = WorkloadParams {
            peers: 50,
            items: 5_000,
            instances_per_item: 10,
            theta: 5.0,
        };
        let replica = SystemData::generate_paper(&params, 8);
        let draw = SystemData::generate(&params, 8);
        // Replica split keeps o ≥ n/N; instance draw collapses to a handful.
        assert!(replica.avg_distinct_per_peer() >= 5_000.0 / 50.0 * 0.8);
        assert!(draw.avg_distinct_per_peer() < 20.0);
    }

    #[test]
    fn paper_placement_values_are_zipf_ordered() {
        let data = SystemData::generate_paper(&small(), 9);
        let global = |item: u64| -> u64 {
            (0..20)
                .map(|i| data.local_value(PeerId::new(i), ItemId(item)))
                .sum()
        };
        assert!(global(0) >= global(10));
        assert!(global(10) >= global(400));
    }

    #[test]
    fn paper_placement_splits_items_across_at_most_ten_peers() {
        let data = SystemData::generate_paper(&small(), 10);
        for item in 0..500u64 {
            let holders = (0..20)
                .filter(|&i| data.local_value(PeerId::new(i), ItemId(item)) > 0)
                .count();
            assert!(
                (1..=10).contains(&holders),
                "item {item}: {holders} holders"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SystemData::generate(&small(), 9);
        let b = SystemData::generate(&small(), 9);
        for i in 0..20 {
            assert_eq!(a.local_items(PeerId::new(i)), b.local_items(PeerId::new(i)));
        }
        let c = SystemData::generate(&small(), 10);
        let differs =
            (0..20).any(|i| a.local_items(PeerId::new(i)) != c.local_items(PeerId::new(i)));
        assert!(differs, "different seeds produced identical data");
    }
}
