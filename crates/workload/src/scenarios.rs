//! The application scenarios of Table I, each reduced to IFI.
//!
//! The paper motivates IFI with seven concrete P2P operations (Table I).
//! Every generator here produces a [`SystemData`] — peer-local item sets
//! with local values — so that running `IFI(A, t)` on its output answers
//! the application question exactly as the table prescribes:
//!
//! | generator | operation | item | local value at peer `i` |
//! |-----------|-----------|------|--------------------------|
//! | [`keyword_queries`] | frequent keywords (cache management) | keyword | # of peer-`i` queries containing it |
//! | [`document_replicas`] | frequent documents (search design) | document | # replicas held at peer `i` |
//! | [`cooccurring_pairs`] | co-occurring keyword pairs (query refinement) | keyword pair | # of peer-`i` queries containing both |
//! | [`popular_peers`] | popular peers (mirroring, incentives) | peer | # queries it answered well for peer `i` |
//! | [`contacted_pairs`] | frequently contacted peer pairs (topology optimization, social analysis) | (src, dst) pair | # packets between the pair seen at peer `i` |
//! | [`flow_traffic`] | large flows to a destination (DoS detection) | destination | flow bytes to it observed at peer `i` |
//! | [`byte_sequences`] | frequent byte sequences (worm detection) | sequence | # flows through peer `i` containing it |

use ifi_sim::DetRng;

use crate::generator::{ItemId, SystemData};
use crate::zipf::ZipfSampler;

/// Encodes an unordered keyword pair `(a, b)` into a single item id.
///
/// # Panics
///
/// Panics if `a == b` or either exceeds `vocabulary`.
pub fn pair_item(a: u64, b: u64, vocabulary: u64) -> ItemId {
    assert!(a != b, "a keyword does not co-occur with itself");
    assert!(
        a < vocabulary && b < vocabulary,
        "keyword out of vocabulary"
    );
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ItemId(lo * vocabulary + hi)
}

/// Decodes a pair item id back into `(lo, hi)` keyword ids.
pub fn decode_pair(item: ItemId, vocabulary: u64) -> (u64, u64) {
    (item.0 / vocabulary, item.0 % vocabulary)
}

/// Frequent-keyword workload: each peer issues `queries_per_peer` queries
/// of `keywords_per_query` distinct Zipf-popular keywords; the local value
/// of a keyword counts the peer's queries mentioning it.
pub fn keyword_queries(
    peers: usize,
    vocabulary: u64,
    queries_per_peer: usize,
    keywords_per_query: usize,
    theta: f64,
    seed: u64,
) -> SystemData {
    assert!(keywords_per_query as u64 <= vocabulary);
    let mut rng = DetRng::new(seed).derive(0x5EED_0001);
    let zipf = ZipfSampler::new(vocabulary as usize, theta);
    let mut local = Vec::with_capacity(peers);
    for _ in 0..peers {
        let mut counts: Vec<(ItemId, u64)> = Vec::new();
        for _ in 0..queries_per_peer {
            let mut kws = Vec::with_capacity(keywords_per_query);
            while kws.len() < keywords_per_query {
                let k = zipf.sample(&mut rng) as u64;
                if !kws.contains(&k) {
                    kws.push(k);
                }
            }
            for k in kws {
                counts.push((ItemId(k), 1));
            }
        }
        local.push(counts);
    }
    SystemData::from_local_sets(local, vocabulary)
}

/// Co-occurring keyword-pair workload built from the same query model as
/// [`keyword_queries`]; items are unordered pairs encoded by [`pair_item`].
pub fn cooccurring_pairs(
    peers: usize,
    vocabulary: u64,
    queries_per_peer: usize,
    keywords_per_query: usize,
    theta: f64,
    seed: u64,
) -> SystemData {
    assert!(keywords_per_query >= 2, "pairs need ≥ 2 keywords per query");
    let mut rng = DetRng::new(seed).derive(0x5EED_0002);
    let zipf = ZipfSampler::new(vocabulary as usize, theta);
    let mut local = Vec::with_capacity(peers);
    for _ in 0..peers {
        let mut counts: Vec<(ItemId, u64)> = Vec::new();
        for _ in 0..queries_per_peer {
            let mut kws: Vec<u64> = Vec::with_capacity(keywords_per_query);
            while kws.len() < keywords_per_query {
                let k = zipf.sample(&mut rng) as u64;
                if !kws.contains(&k) {
                    kws.push(k);
                }
            }
            for i in 0..kws.len() {
                for j in (i + 1)..kws.len() {
                    counts.push((pair_item(kws[i], kws[j], vocabulary), 1));
                }
            }
        }
        local.push(counts);
    }
    SystemData::from_local_sets(local, vocabulary * vocabulary)
}

/// Document-replica workload: each document has a Zipf-popular replica
/// count; replicas land on uniformly random peers. The local value of a
/// document is the number of replicas the peer holds.
pub fn document_replicas(
    peers: usize,
    documents: u64,
    total_replicas: u64,
    theta: f64,
    seed: u64,
) -> SystemData {
    let mut rng = DetRng::new(seed).derive(0x5EED_0003);
    let zipf = ZipfSampler::new(documents as usize, theta);
    let replica_counts = zipf.apportion(total_replicas);
    let mut local: Vec<Vec<(ItemId, u64)>> = vec![Vec::new(); peers];
    for (doc, &count) in replica_counts.iter().enumerate() {
        for _ in 0..count {
            let p = rng.below(peers as u64) as usize;
            local[p].push((ItemId(doc as u64), 1));
        }
    }
    SystemData::from_local_sets(local, documents)
}

/// Popular-peer workload (content mirroring / incentives): each peer issues
/// queries; each query is answered satisfactorily by a Zipf-popular peer
/// (well-provisioned peers answer more). The *items are peer identifiers*.
pub fn popular_peers(peers: usize, queries_per_peer: usize, theta: f64, seed: u64) -> SystemData {
    let mut rng = DetRng::new(seed).derive(0x5EED_0004);
    let zipf = ZipfSampler::new(peers, theta);
    let mut local = Vec::with_capacity(peers);
    for _ in 0..peers {
        let mut counts: Vec<(ItemId, u64)> = Vec::new();
        for _ in 0..queries_per_peer {
            let answerer = zipf.sample(&mut rng) as u64;
            counts.push((ItemId(answerer), 1));
        }
        local.push(counts);
    }
    SystemData::from_local_sets(local, peers as u64)
}

/// DoS-detection workload: `flows` flows with Zipf-popular destinations and
/// exponential-ish sizes; each flow's packets transit `observers_per_flow`
/// random peers, each of which accumulates the flow's bytes against the
/// destination address. Item = destination, value = bytes.
pub fn flow_traffic(
    peers: usize,
    destinations: u64,
    flows: usize,
    observers_per_flow: usize,
    mean_flow_bytes: u64,
    theta: f64,
    seed: u64,
) -> SystemData {
    assert!(observers_per_flow >= 1 && observers_per_flow <= peers);
    let mut rng = DetRng::new(seed).derive(0x5EED_0005);
    let zipf = ZipfSampler::new(destinations as usize, theta);
    let mut local: Vec<Vec<(ItemId, u64)>> = vec![Vec::new(); peers];
    for _ in 0..flows {
        let dest = zipf.sample(&mut rng) as u64;
        let size = rng.exponential(mean_flow_bytes as f64).max(1.0) as u64;
        let observers = rng.sample_indices(peers, observers_per_flow);
        for p in observers {
            local[p].push((ItemId(dest), size));
        }
    }
    SystemData::from_local_sets(local, destinations)
}

/// Frequently-contacted-peer-pair workload (Table I, row 5): peers route
/// packets for each other and record the (source, destination) address
/// pairs they forward. Communication is assortative (each source talks
/// mostly to a few Zipf-favoured destinations), so some pairs dominate —
/// the input for "network topology optimization" and "social relationship
/// analysis". Items encode unordered address pairs via [`pair_item`] over
/// the peer-id space.
pub fn contacted_pairs(peers: usize, packets_per_peer: usize, theta: f64, seed: u64) -> SystemData {
    assert!(peers >= 3, "need at least 3 peers for src/dst/forwarder");
    let mut rng = DetRng::new(seed).derive(0x5EED_0008);
    // Each source's favourite destinations: a Zipf over a per-source
    // pseudo-random permutation offset, so favourites differ per source
    // while the pair distribution stays heavy-tailed.
    let zipf = ZipfSampler::new(peers - 1, theta);
    let mut local: Vec<Vec<(ItemId, u64)>> = vec![Vec::new(); peers];
    for _ in 0..peers * packets_per_peer {
        let src = rng.below(peers as u64);
        // Rank among the other peers, mapped to a concrete destination.
        let rank = zipf.sample(&mut rng) as u64;
        let dst = (src + 1 + (rank + ifi_sim::mix64(src) % 7) % (peers as u64 - 1)) % peers as u64;
        if src == dst {
            continue;
        }
        // A random third peer forwards (observes) the packet.
        let mut fwd = rng.below(peers as u64) as usize;
        while fwd as u64 == src || fwd as u64 == dst {
            fwd = rng.below(peers as u64) as usize;
        }
        local[fwd].push((pair_item(src, dst, peers as u64), 1));
    }
    SystemData::from_local_sets(local, (peers * peers) as u64)
}

/// Popular-peer workload driven by **actual overlay searches** (Table I,
/// row 4, mechanistic version): each peer issues queries for Zipf-popular
/// objects and resolves them by random walks over the overlay; the local
/// value of peer `X` at peer `i` counts the queries `X` answered
/// satisfactorily for `i`. Well-replicated peers (object holders) answer
/// more queries, so IFI over this data finds the system's de-facto
/// content servers — the "content mirroring / incentive mechanism" input.
///
/// Objects are replicated at `replicas` pseudo-random holders each.
/// Unresolved queries (walk budget exhausted) contribute nothing.
pub fn popular_peers_by_search(
    topology: &ifi_overlay::Topology,
    objects: u64,
    replicas: usize,
    queries_per_peer: usize,
    theta: f64,
    seed: u64,
) -> SystemData {
    use ifi_overlay::search::random_walk;

    let peers = topology.peer_count();
    assert!(replicas >= 1 && replicas <= peers);
    let mut rng = DetRng::new(seed).derive(0x5EED_0007);
    let zipf = ZipfSampler::new(objects as usize, theta);

    // Holder sets: `replicas` distinct peers per object.
    let holders: Vec<Vec<usize>> = (0..objects)
        .map(|_| rng.sample_indices(peers, replicas))
        .collect();

    let mut local: Vec<Vec<(ItemId, u64)>> = vec![Vec::new(); peers];
    #[allow(clippy::needless_range_loop)] // origin is both a peer id and an index
    for origin in 0..peers {
        for _ in 0..queries_per_peer {
            let object = zipf.sample(&mut rng);
            let hold = &holders[object];
            let outcome = random_walk(
                topology,
                ifi_sim::PeerId::new(origin),
                4,
                24,
                |p| hold.binary_search(&p.index()).is_ok(),
                &mut rng,
            );
            if let Some(&answerer) = outcome.found.first() {
                local[origin].push((ItemId(answerer.raw() as u64), 1));
            }
        }
    }
    SystemData::from_local_sets(local, peers as u64)
}

/// Worm-detection workload: each flow carries a few byte sequences
/// ("signatures"); a worm-like sequence appears in a large fraction of
/// flows. Item = byte-sequence id, value = number of flows through the
/// peer containing it. Sequence id 0 is the planted worm signature.
pub fn byte_sequences(
    peers: usize,
    sequences: u64,
    flows_per_peer: usize,
    worm_fraction: f64,
    seed: u64,
) -> SystemData {
    assert!((0.0..=1.0).contains(&worm_fraction));
    let mut rng = DetRng::new(seed).derive(0x5EED_0006);
    // Background sequences are uniformly popular; the worm rides on top.
    let zipf = ZipfSampler::new(sequences as usize, 0.5);
    let mut local = Vec::with_capacity(peers);
    for _ in 0..peers {
        let mut counts: Vec<(ItemId, u64)> = Vec::new();
        for _ in 0..flows_per_peer {
            // Every flow contains two background sequences …
            counts.push((ItemId(zipf.sample(&mut rng) as u64), 1));
            counts.push((ItemId(zipf.sample(&mut rng) as u64), 1));
            // … and the worm signature with probability `worm_fraction`.
            if rng.chance(worm_fraction) {
                counts.push((ItemId(0), 1));
            }
        }
        local.push(counts);
    }
    SystemData::from_local_sets(local, sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GroundTruth;

    #[test]
    fn keyword_queries_counts_queries_not_occurrences() {
        let data = keyword_queries(10, 100, 50, 3, 1.0, 1);
        let truth = GroundTruth::compute(&data);
        // 10 peers × 50 queries × 3 distinct keywords each.
        assert_eq!(truth.total_value(), 10 * 50 * 3);
        // Zipf head keyword should be clearly frequent.
        assert!(truth.value_of(ItemId(0)) > truth.value_of(ItemId(90)));
    }

    #[test]
    fn pair_item_round_trips_and_is_symmetric() {
        assert_eq!(pair_item(3, 7, 100), pair_item(7, 3, 100));
        let (lo, hi) = decode_pair(pair_item(3, 7, 100), 100);
        assert_eq!((lo, hi), (3, 7));
    }

    #[test]
    #[should_panic(expected = "does not co-occur with itself")]
    fn pair_item_rejects_self_pair() {
        let _ = pair_item(4, 4, 10);
    }

    #[test]
    fn cooccurring_pairs_mass_matches_query_count() {
        let data = cooccurring_pairs(5, 50, 20, 3, 1.0, 2);
        let truth = GroundTruth::compute(&data);
        // Each query of 3 keywords yields C(3,2) = 3 pairs.
        assert_eq!(truth.total_value(), 5 * 20 * 3);
        // All items decode to valid ordered pairs.
        for &(item, _) in truth.globals() {
            let (lo, hi) = decode_pair(item, 50);
            assert!(lo < hi && hi < 50);
        }
    }

    #[test]
    fn document_replicas_conserve_total() {
        let data = document_replicas(20, 500, 5_000, 1.0, 3);
        let truth = GroundTruth::compute(&data);
        assert_eq!(truth.total_value(), 5_000);
        // The most replicated document is document 0 (rank 1).
        assert_eq!(truth.globals()[0].0, ItemId(0));
    }

    #[test]
    fn popular_peers_items_are_peer_ids() {
        let data = popular_peers(30, 100, 1.2, 4);
        let truth = GroundTruth::compute(&data);
        assert_eq!(truth.total_value(), 30 * 100);
        for &(item, _) in truth.globals() {
            assert!(item.0 < 30);
        }
    }

    #[test]
    fn flow_traffic_hotspots_the_head_destination() {
        let data = flow_traffic(20, 1_000, 2_000, 3, 10_000, 1.5, 5);
        let truth = GroundTruth::compute(&data);
        let head = truth.value_of(ItemId(0));
        let tail = truth.value_of(ItemId(900));
        assert!(head > 10 * tail.max(1), "head {head} vs tail {tail}");
        // Every flow is observed by exactly 3 peers, so per-peer sets are
        // non-trivial.
        assert!(data.avg_distinct_per_peer() > 1.0);
    }

    #[test]
    fn byte_sequences_plant_a_detectable_worm() {
        let data = byte_sequences(20, 10_000, 200, 0.8, 6);
        let truth = GroundTruth::compute(&data);
        let worm = truth.value_of(ItemId(0));
        // Worm appears in ~80% of 20×200 flows; any background sequence in
        // far fewer.
        assert!(worm > 2_500, "worm value {worm}");
        let runner_up = truth
            .globals()
            .iter()
            .find(|&&(id, _)| id != ItemId(0))
            .map(|&(_, v)| v)
            .unwrap();
        assert!(worm > 5 * runner_up, "worm {worm} vs runner-up {runner_up}");
        // IFI at 50% of flows finds exactly the worm.
        let flows_total = 20 * 200;
        let frequent = truth.frequent_items(flows_total / 2);
        assert_eq!(frequent.len(), 1);
        assert_eq!(frequent[0].0, ItemId(0));
    }

    #[test]
    fn contacted_pairs_finds_chatty_address_pairs() {
        let data = contacted_pairs(40, 300, 1.4, 13);
        let truth = GroundTruth::compute(&data);
        assert!(truth.total_value() > 0);
        // Every item decodes to a valid, distinct address pair.
        for &(item, _) in truth.globals() {
            let (lo, hi) = decode_pair(item, 40);
            assert!(lo < hi && hi < 40, "bad pair {item}");
        }
        // Assortative traffic: the hottest pair dwarfs the median pair.
        let values: Vec<u64> = truth.globals().iter().map(|&(_, v)| v).collect();
        assert!(
            values[0] >= 5 * values[values.len() / 2].max(1),
            "top {} vs median {}",
            values[0],
            values[values.len() / 2]
        );
    }

    #[test]
    fn search_driven_popularity_credits_holders() {
        let topo = ifi_overlay::Topology::random_regular(80, 4, &mut ifi_sim::DetRng::new(11));
        let data = popular_peers_by_search(&topo, 200, 8, 40, 1.2, 12);
        let truth = GroundTruth::compute(&data);
        // Some queries resolve; every credited item is a valid peer id.
        assert!(truth.total_value() > 0);
        assert!(truth.total_value() <= 80 * 40);
        for &(item, _) in truth.globals() {
            assert!(item.0 < 80);
        }
        // The most credited peer answers far more than the median: holders
        // of popular objects dominate.
        let values: Vec<u64> = truth.globals().iter().map(|&(_, v)| v).collect();
        let max = values[0];
        let median = values[values.len() / 2];
        assert!(max >= 3 * median.max(1), "max {max} vs median {median}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = keyword_queries(5, 50, 10, 2, 1.0, 9);
        let b = keyword_queries(5, 50, 10, 2, 1.0, 9);
        let ta = GroundTruth::compute(&a);
        let tb = GroundTruth::compute(&b);
        assert_eq!(ta.globals(), tb.globals());
    }
}
