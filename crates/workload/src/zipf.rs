//! Zipf-distributed sampling.
//!
//! §V: *"We use zipf distribution (with data skewness parameter θ) to model
//! the distribution of values for items."* Rank `k ∈ 1..=n` is drawn with
//! probability proportional to `1/k^θ`; `θ = 0` degenerates to uniform.

use ifi_sim::DetRng;

/// A sampler over ranks `0..n` (0-based) with Zipf(θ) probabilities.
///
/// Built once per workload (cost `O(n)` time and memory for the cumulative
/// table), then each draw is a binary search — `O(log n)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank ≤ k), strictly increasing, last element 1.0.
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf, theta }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one 0-based rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit_f64();
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// The probability mass of 0-based rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }

    /// Deterministically splits `total` units of mass over ranks
    /// proportionally to the Zipf pmf (largest-remainder rounding so the
    /// parts sum exactly to `total`). Used when a workload wants exact
    /// Zipf-shaped global values instead of multinomial sampling.
    pub fn apportion(&self, total: u64) -> Vec<u64> {
        let n = self.cdf.len();
        let mut out = Vec::with_capacity(n);
        let mut rema: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut assigned = 0u64;
        for k in 0..n {
            let exact = self.pmf(k) * total as f64;
            let base = exact.floor() as u64;
            assigned += base;
            out.push(base);
            rema.push((k, exact - base as f64));
        }
        let mut leftover = total - assigned;
        rema.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
        for (k, _) in rema {
            if leftover == 0 {
                break;
            }
            out[k] += 1;
            leftover -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = ZipfSampler::new(100, 0.0);
        for k in 0..100 {
            assert!((z.pmf(k) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_one_dominates_at_high_skew() {
        let z = ZipfSampler::new(1000, 2.0);
        assert!(z.pmf(0) > 0.6, "rank 1 mass {}", z.pmf(0));
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(999));
    }

    #[test]
    fn theta_one_harmonic_ratios() {
        let z = ZipfSampler::new(10, 1.0);
        // pmf(k) ∝ 1/(k+1): pmf(0)/pmf(1) = 2.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = DetRng::new(123);
        let draws = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let emp = counts[k] as f64 / draws as f64;
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.15 * exp + 0.001,
                "rank {k}: empirical {emp:.5} vs pmf {exp:.5}"
            );
        }
    }

    #[test]
    fn sample_covers_full_range() {
        let z = ZipfSampler::new(5, 0.0);
        let mut rng = DetRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn apportion_sums_exactly() {
        for &(n, theta, total) in &[(10usize, 1.0f64, 1000u64), (100, 0.5, 12_345), (3, 3.0, 7)] {
            let z = ZipfSampler::new(n, theta);
            let parts = z.apportion(total);
            assert_eq!(parts.iter().sum::<u64>(), total);
            assert_eq!(parts.len(), n);
            // Monotone non-increasing in rank (pmf is).
            assert!(parts.windows(2).all(|w| w[0] >= w[1] || w[0] + 1 >= w[1]));
        }
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        // The constructor pins the tail to exactly 1.0 to absorb
        // floating-point shortfall (so a draw of u ≈ 1.0 can never fall
        // off the end of the table). Assert completeness with an epsilon
        // rather than exact equality so the test checks the accumulated
        // math and not merely the pin, and exercise a spread of (n, θ)
        // where rounding behaves differently.
        for &(n, theta) in &[(1usize, 2.0f64), (10, 0.0), (1_000, 1.2), (100_000, 0.8)] {
            let z = ZipfSampler::new(n, theta);
            assert!(
                z.cdf.windows(2).all(|w| w[0] <= w[1]),
                "n={n} θ={theta}: cdf not monotone"
            );
            let last = *z.cdf.last().unwrap();
            assert!(
                (last - 1.0).abs() < 1e-9,
                "n={n} θ={theta}: cdf tail {last} far from 1"
            );
            // Sampling relies on the tail covering the whole unit
            // interval: no cdf entry may exceed it.
            assert!(z.cdf.iter().all(|&c| c <= last));
            assert_eq!(z.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        let _ = ZipfSampler::new(10, -1.0);
    }
}
