//! Ground truth: centrally computed global values and exact IFI answers.
//!
//! Everything netFilter computes in-network is verified against this
//! oracle, and the statistics the paper's analysis needs (`v̄`, `v̄_light`,
//! `r`, …) are derived from it.

use std::collections::HashMap;

use ifi_sim::PeerId;

use crate::generator::{ItemId, SystemData};

/// Global values of every item present in the system, plus derived
/// statistics used throughout §IV of the paper.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `(item, global value)` sorted by descending value, then item id.
    globals: Vec<(ItemId, u64)>,
    by_item: HashMap<ItemId, u64>,
    /// `v` — total mass.
    total: u64,
    /// `n` universe size carried over from the data set.
    universe: u64,
}

impl GroundTruth {
    /// Sums local values across all peers.
    pub fn compute(data: &SystemData) -> Self {
        let mut by_item: HashMap<ItemId, u64> = HashMap::new();
        for p in 0..data.peer_count() {
            for &(id, v) in data.local_items(PeerId::new(p)) {
                *by_item.entry(id).or_insert(0) += v;
            }
        }
        let mut globals: Vec<(ItemId, u64)> = by_item.iter().map(|(&k, &v)| (k, v)).collect();
        globals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total = globals.iter().map(|&(_, v)| v).sum();
        GroundTruth {
            globals,
            by_item,
            total,
            universe: data.universe(),
        }
    }

    /// `v` — the summation over all local values of all items.
    pub fn total_value(&self) -> u64 {
        self.total
    }

    /// The item universe size `n` (items with zero global value included).
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of items with positive global value.
    pub fn present_items(&self) -> usize {
        self.globals.len()
    }

    /// The global value `v_x` of `item` (0 if absent).
    pub fn value_of(&self, item: ItemId) -> u64 {
        self.by_item.get(&item).copied().unwrap_or(0)
    }

    /// All `(item, global value)` pairs, descending by value.
    pub fn globals(&self) -> &[(ItemId, u64)] {
        &self.globals
    }

    /// The paper's threshold `t = φ·v` for a threshold ratio `φ`, rounded
    /// up so that `v_x ≥ t ⇔ v_x / v ≥ φ` for integer values.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `(0, 1]`.
    pub fn threshold_for_ratio(&self, ratio: f64) -> u64 {
        assert!(ratio > 0.0 && ratio <= 1.0, "threshold ratio out of (0,1]");
        (ratio * self.total as f64).ceil() as u64
    }

    /// The exact answer to `IFI(A, t)`: items with `v_x ≥ t`, with their
    /// exact global values, descending by value.
    pub fn frequent_items(&self, t: u64) -> Vec<(ItemId, u64)> {
        self.globals
            .iter()
            .take_while(|&&(_, v)| v >= t)
            .copied()
            .collect()
    }

    /// `r` — number of heavy items at threshold `t`.
    pub fn heavy_count(&self, t: u64) -> usize {
        self.globals.partition_point(|&(_, v)| v >= t)
    }

    /// `v̄` — average global value over the item universe (`v / n`), the
    /// definition the paper's Eq. 3 uses (`v = n·v̄`).
    pub fn avg_value(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            self.total as f64 / self.universe as f64
        }
    }

    /// `v̄_light` — average global value of *light* items (those below `t`)
    /// over the light part of the universe, counting never-seen items as
    /// zero-valued light items.
    pub fn avg_light_value(&self, t: u64) -> f64 {
        let heavy = self.heavy_count(t);
        let light_universe = self.universe.saturating_sub(heavy as u64);
        if light_universe == 0 {
            return 0.0;
        }
        let heavy_mass: u64 = self.globals[..heavy].iter().map(|&(_, v)| v).sum();
        (self.total - heavy_mass) as f64 / light_universe as f64
    }

    /// Checks a candidate answer set for exactness: returns
    /// `(false positives, false negatives, value errors)` versus the truth.
    pub fn verify(&self, t: u64, reported: &[(ItemId, u64)]) -> (usize, usize, usize) {
        let truth = self.frequent_items(t);
        let truth_map: HashMap<ItemId, u64> = truth.iter().copied().collect();
        let mut fp = 0;
        let mut value_errors = 0;
        let mut seen = 0;
        for &(id, v) in reported {
            match truth_map.get(&id) {
                None => fp += 1,
                Some(&tv) => {
                    seen += 1;
                    if tv != v {
                        value_errors += 1;
                    }
                }
            }
        }
        let fn_count = truth.len() - seen;
        (fp, fn_count, value_errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadParams;

    fn toy() -> GroundTruth {
        // Peer 0: a=3, b=1; Peer 1: a=2, c=4.
        let data = SystemData::from_local_sets(
            vec![
                vec![(ItemId(0), 3), (ItemId(1), 1)],
                vec![(ItemId(0), 2), (ItemId(2), 4)],
            ],
            5,
        );
        GroundTruth::compute(&data)
    }

    #[test]
    fn sums_across_peers() {
        let g = toy();
        assert_eq!(g.value_of(ItemId(0)), 5);
        assert_eq!(g.value_of(ItemId(2)), 4);
        assert_eq!(g.value_of(ItemId(1)), 1);
        assert_eq!(g.value_of(ItemId(4)), 0);
        assert_eq!(g.total_value(), 10);
        assert_eq!(g.present_items(), 3);
    }

    #[test]
    fn frequent_items_respect_threshold() {
        let g = toy();
        assert_eq!(g.frequent_items(4), vec![(ItemId(0), 5), (ItemId(2), 4)]);
        assert_eq!(g.frequent_items(5), vec![(ItemId(0), 5)]);
        assert_eq!(g.frequent_items(6), vec![]);
        assert_eq!(g.heavy_count(4), 2);
    }

    #[test]
    fn threshold_for_ratio_rounds_up() {
        let g = toy(); // v = 10
        assert_eq!(g.threshold_for_ratio(0.25), 3); // ceil(2.5)
        assert_eq!(g.threshold_for_ratio(0.4), 4);
        assert_eq!(g.threshold_for_ratio(1.0), 10);
    }

    #[test]
    fn averages_use_universe_including_absent_items() {
        let g = toy(); // universe 5, total 10
        assert_eq!(g.avg_value(), 2.0);
        // t=4: heavy = {a:5, c:4}, mass 9; light universe = 3 (b + two
        // absent items), light mass 1.
        assert!((g.avg_light_value(4) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn verify_detects_all_error_kinds() {
        let g = toy();
        // Truth at t=4: {(0,5), (2,4)}.
        let perfect = vec![(ItemId(0), 5), (ItemId(2), 4)];
        assert_eq!(g.verify(4, &perfect), (0, 0, 0));
        let with_fp = vec![(ItemId(0), 5), (ItemId(2), 4), (ItemId(1), 1)];
        assert_eq!(g.verify(4, &with_fp), (1, 0, 0));
        let with_fn = vec![(ItemId(0), 5)];
        assert_eq!(g.verify(4, &with_fn), (0, 1, 0));
        let with_value_err = vec![(ItemId(0), 6), (ItemId(2), 4)];
        assert_eq!(g.verify(4, &with_value_err), (0, 0, 1));
    }

    #[test]
    fn globals_sorted_descending() {
        let params = WorkloadParams {
            peers: 10,
            items: 200,
            instances_per_item: 10,
            theta: 1.0,
        };
        let g = GroundTruth::compute(&SystemData::generate(&params, 7));
        assert!(g.globals().windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(g.total_value(), 2000);
    }

    #[test]
    fn zipf_heavy_count_shrinks_with_threshold() {
        let params = WorkloadParams {
            peers: 20,
            items: 1000,
            instances_per_item: 10,
            theta: 1.0,
        };
        let g = GroundTruth::compute(&SystemData::generate(&params, 8));
        let t1 = g.threshold_for_ratio(0.001);
        let t2 = g.threshold_for_ratio(0.01);
        let t3 = g.threshold_for_ratio(0.1);
        assert!(g.heavy_count(t1) >= g.heavy_count(t2));
        assert!(g.heavy_count(t2) >= g.heavy_count(t3));
        assert!(g.heavy_count(t1) > 0);
    }
}
