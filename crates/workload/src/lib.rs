//! # ifi-workload — workloads for the IFI problem
//!
//! Generates the data sets the netFilter paper evaluates on (§V, Table
//! III): `n` distinct items whose frequencies follow a Zipf distribution
//! with skew `θ`; `10·n` item *instances* are drawn and scattered uniformly
//! over the `N` peers, so each peer holds about `o = 10·n/N` distinct local
//! items. Ground-truth global values (and hence the exact answer to any
//! `IFI(A, t)` query) are computed centrally for verification.
//!
//! The crate also models the application scenarios of Table I (frequent
//! keywords, document replicas, co-occurring keyword pairs, popular peers,
//! flow/DoS traffic, worm byte sequences) as generators that all produce
//! the same [`SystemData`] shape, so every application reduces to IFI
//! exactly as the paper describes.
//!
//! ```
//! use ifi_workload::{WorkloadParams, SystemData, GroundTruth};
//!
//! let params = WorkloadParams { peers: 50, items: 1_000, ..WorkloadParams::default() };
//! let data = SystemData::generate(&params, 42);
//! let truth = GroundTruth::compute(&data);
//! let t = truth.threshold_for_ratio(0.01);
//! let frequent = truth.frequent_items(t);
//! assert!(frequent.iter().all(|&(_, v)| v >= t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod scenarios;
mod stats;
mod zipf;

pub use generator::{ItemId, SystemData, WorkloadParams};
pub use stats::GroundTruth;
pub use zipf::ZipfSampler;
