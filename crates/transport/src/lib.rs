//! A real threaded runtime for the workspace's sans-io protocol cores.
//!
//! The DES kernel in `ifi-sim` runs a [`SansIo`] core against simulated
//! time; this crate runs the *same* cores against the operating system:
//! one thread per peer, real clocks for timers, and either in-process
//! channels ([`run_channel`]) or TCP loopback sockets ([`run_tcp`]) as
//! the message fabric. Nothing in the protocol changes between the two
//! drivers — that is the point of the sans-io split, and the
//! `transport_equivalence` integration test holds both drivers to the
//! same answers and the same per-phase byte totals.
//!
//! # Driver obligations, discharged here
//!
//! The sans-io contract (see `ifi_sim::sansio`) imposes two rules:
//!
//! 1. **Effects apply in emission order.** Each activation's effect batch
//!    is applied front-to-back while holding the shared metrics lock, so
//!    a `MarkPhase` attributes exactly the sends that follow it within
//!    the activation, and interleavings between peers can never split a
//!    batch ([`EventSink`] marks are cleared before the lock drops).
//! 2. **Timer tokens fire at most once.** Every node owns a private
//!    deadline list keyed by [`TimerToken`]; `CancelTimer` removes the
//!    entry outright, so a cancelled token cannot fire late.
//!
//! # Metering
//!
//! Sends are metered through the same [`EventSink`] the DES world uses,
//! at the byte counts the protocol charges (the paper's cost model) —
//! *not* at the framed wire length. The report therefore reconciles
//! byte-for-byte with a DES run of the same workload, which is what makes
//! "the simulator's cost curves describe the real system" an assertion
//! rather than a hope. Frame overhead of the TCP hub (12-byte routing
//! header) is observable separately via [`RunOutcome::frames_sent`].
//!
//! # Chaos
//!
//! Both fabrics accept a seed-replayable [`ChaosPlan`] — the transport
//! sibling of the simulator's `FaultPlan` — via [`run_channel_chaos`] /
//! [`run_tcp_chaos`]: probabilistic frame drops, duplication, and delays;
//! wall-clock partition windows; scheduled connection resets; and
//! peer-thread crashes with delayed restarts. A main-thread supervisor
//! owns the fault timeline: it tears crashed peers down (mailbox and
//! armed timers lost, link severed), respawns them after their downtime,
//! and reconnects severed links under capped exponential backoff with
//! deterministic jitter ([`Backoff`], reusing the reliability envelope's
//! RTO schedule) confirmed by ping/pong health checks. Mailboxes are
//! bounded ([`MAILBOX_CAP`]): a full mailbox load-sheds the frame with a
//! metered `mailbox-shed` warning instead of blocking the sender, and a
//! reliability envelope recovers the shed frame like any other loss.
//! [`ChaosPlan::fault_plan`] maps a plan onto the DES vocabulary, which
//! is what lets the chaos-equivalence suite hold both drivers to the
//! same certified answer under the same faults.

mod chaos;
mod runtime;
mod supervisor;
mod tcp;
mod wire;

pub use chaos::{ChaosPartition, ChaosPlan, CrashPoint, ResetPoint};
pub use runtime::{run_channel, run_channel_chaos, RunOutcome, IDLE_WAIT, MAILBOX_CAP};
pub use supervisor::Backoff;
pub use tcp::{run_tcp, run_tcp_chaos};
pub use wire::{WireCodec, WireError};

// Re-exported so transport callers need not depend on `ifi-sim` directly
// for the common driver vocabulary.
pub use ifi_sim::{
    AllUp, Effect, Effects, EventSink, MetricsReport, NodeEvent, SansIo, TimerToken,
};

#[cfg(test)]
mod tests {
    use std::time::Duration as StdDuration;

    use ifi_sim::{Duration, Membership, MsgClass, PeerId, SimTime};

    use super::*;

    /// Token-ring counter: peer 0 starts a token at 0; each hop increments
    /// it; whoever sees it reach `LAPS * n` delivers and stops. Exercises
    /// Send, Deliver, MarkPhase, Charge, and (via the watchdog) SetTimer +
    /// CancelTimer on a real transport.
    #[derive(Debug, Clone)]
    struct Ring {
        id: usize,
        n: usize,
        target: u32,
        watchdog: Option<TimerToken>,
        fired: bool,
    }

    #[derive(Debug)]
    enum RingTimer {
        Watchdog,
    }

    impl Ring {
        fn population(n: usize, laps: u32) -> Vec<Ring> {
            (0..n)
                .map(|id| Ring {
                    id,
                    n,
                    target: laps * n as u32,
                    watchdog: None,
                    fired: false,
                })
                .collect()
        }

        fn next(&self) -> PeerId {
            PeerId::new((self.id + 1) % self.n)
        }
    }

    impl SansIo for Ring {
        type Msg = u32;
        type Timer = RingTimer;
        type Output = u32;

        fn on_event(
            &mut self,
            ev: NodeEvent<u32, RingTimer>,
            _now: SimTime,
            env: &dyn Membership,
            fx: &mut Effects<Self>,
        ) {
            match ev {
                NodeEvent::Start => {
                    assert_eq!(env.peer_count(), self.n);
                    self.watchdog =
                        Some(fx.set_timer(Duration::from_secs(120), RingTimer::Watchdog));
                    if self.id == 0 {
                        fx.mark_phase("ring");
                        fx.send(self.next(), 1, 4, MsgClass::DATA);
                    }
                }
                NodeEvent::Message { from: _, msg } => {
                    if msg >= self.target {
                        if let Some(t) = self.watchdog.take() {
                            fx.cancel_timer(t);
                        }
                        fx.charge(MsgClass::CONTROL, 2);
                        fx.deliver(msg);
                    } else {
                        fx.mark_phase("ring");
                        fx.send(self.next(), msg + 1, 4, MsgClass::DATA);
                    }
                }
                NodeEvent::Timer {
                    tag: RingTimer::Watchdog,
                } => {
                    self.fired = true;
                    fx.warn("watchdog-expired");
                }
            }
        }
    }

    fn check_outcome(outcome: &RunOutcome<Ring>, n: usize, laps: u32) {
        let target = laps * n as u32;
        assert_eq!(outcome.outputs.len(), 1, "exactly one delivery expected");
        assert_eq!(outcome.outputs[0].1, target);
        // target hops of 4 bytes each, all attributed to the "ring" phase.
        assert_eq!(outcome.report.phase_bytes("ring"), u64::from(target) * 4);
        assert_eq!(outcome.report.phase_bytes("control"), 2);
        assert_eq!(outcome.frames_sent, u64::from(target));
        assert!(
            outcome.report.warnings.is_empty(),
            "a cancelled watchdog fired: {:?}",
            outcome.report.warnings
        );
    }

    #[test]
    fn channel_fabric_runs_a_ring_to_completion() {
        let (n, laps) = (5, 3);
        let outcome = run_channel(Ring::population(n, laps), 1, StdDuration::from_secs(30));
        check_outcome(&outcome, n, laps);
    }

    /// Big-endian u32, enough for the ring token.
    struct U32Wire;

    impl WireCodec<u32> for U32Wire {
        fn encode(&self, msg: &u32) -> Result<Vec<u8>, WireError> {
            Ok(msg.to_be_bytes().to_vec())
        }

        fn decode(&self, bytes: &[u8]) -> Result<u32, WireError> {
            let arr: [u8; 4] = bytes
                .try_into()
                .map_err(|_| WireError(format!("expected 4 bytes, got {}", bytes.len())))?;
            Ok(u32::from_be_bytes(arr))
        }
    }

    #[test]
    fn tcp_fabric_runs_a_ring_to_completion() {
        let (n, laps) = (4, 2);
        let outcome = run_tcp(
            Ring::population(n, laps),
            U32Wire,
            1,
            StdDuration::from_secs(30),
        )
        .expect("tcp fabric setup failed");
        check_outcome(&outcome, n, laps);
    }

    /// A codec that encodes fine but rejects everything on decode —
    /// simulating payload corruption between two live sockets.
    struct GarbageWire;

    impl WireCodec<u32> for GarbageWire {
        fn encode(&self, msg: &u32) -> Result<Vec<u8>, WireError> {
            Ok(msg.to_be_bytes().to_vec())
        }

        fn decode(&self, _bytes: &[u8]) -> Result<u32, WireError> {
            Err(WireError("corrupted payload".into()))
        }
    }

    #[test]
    fn undecodable_payloads_warn_and_disconnect_without_panicking() {
        let outcome = run_tcp(
            Ring::population(2, 1),
            GarbageWire,
            1,
            StdDuration::from_secs(2),
        )
        .expect("tcp fabric setup failed");
        // The token never survives decoding, so nothing is delivered —
        // but the run tears down cleanly and the rejection is metered.
        assert!(outcome.outputs.is_empty());
        assert!(
            outcome
                .report
                .warnings
                .iter()
                .any(|(l, _)| l == "undecodable-frame"),
            "expected an undecodable-frame warning, got {:?}",
            outcome.report.warnings
        );
    }

    /// Regression for runaway teardown: a run that hits `max_wait` with
    /// peers still live (armed timers, queued traffic) must still join
    /// every thread and hand all cores back, promptly.
    #[test]
    fn timed_out_runs_join_all_threads_within_the_deadline() {
        #[derive(Debug)]
        struct Idler;
        #[derive(Debug)]
        struct Tick;
        impl SansIo for Idler {
            type Msg = ();
            type Timer = Tick;
            type Output = ();
            fn on_event(
                &mut self,
                ev: NodeEvent<(), Tick>,
                _now: SimTime,
                _env: &dyn Membership,
                fx: &mut Effects<Self>,
            ) {
                // Re-arm forever; never deliver.
                if matches!(ev, NodeEvent::Start | NodeEvent::Timer { .. }) {
                    fx.set_timer(Duration::from_millis(10), Tick);
                }
            }
        }
        let started = std::time::Instant::now();
        let outcome = run_channel(
            (0..4).map(|_| Idler).collect(),
            1,
            StdDuration::from_millis(300),
        );
        assert!(outcome.outputs.is_empty());
        assert_eq!(outcome.nodes.len(), 4, "every core must be handed back");
        assert!(
            started.elapsed() < StdDuration::from_secs(10),
            "teardown took {:?} — threads did not join promptly",
            started.elapsed()
        );
    }

    #[test]
    fn uncancelled_timers_fire_and_warn() {
        #[derive(Debug)]
        struct Sleeper;
        #[derive(Debug)]
        struct Tick;
        impl SansIo for Sleeper {
            type Msg = ();
            type Timer = Tick;
            type Output = ();
            fn on_event(
                &mut self,
                ev: NodeEvent<(), Tick>,
                _now: SimTime,
                _env: &dyn Membership,
                fx: &mut Effects<Self>,
            ) {
                match ev {
                    NodeEvent::Start => {
                        fx.set_timer(Duration::from_millis(5), Tick);
                    }
                    NodeEvent::Timer { .. } => {
                        fx.warn("tick");
                        fx.deliver(());
                    }
                    NodeEvent::Message { .. } => {}
                }
            }
        }
        let outcome = run_channel(vec![Sleeper], 1, StdDuration::from_secs(10));
        assert_eq!(outcome.outputs.len(), 1);
        assert_eq!(outcome.report.warnings, vec![("tick".to_string(), 1)]);
    }
}
