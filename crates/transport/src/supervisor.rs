//! Connection supervision: capped exponential backoff with deterministic
//! jitter for the per-peer reconnect loop.
//!
//! The transport reuses the reliability envelope's retransmission
//! schedule (`ifi_sim::backoff_delay`, the exact math `ReliableLink`
//! applies to unacked frames) for its reconnect attempts: base RTO
//! doubled per attempt, capped, plus a deterministic salt-keyed jitter so
//! a fleet of peers severed by the same partition does not redial in
//! lockstep. A successful health-check round-trip resets the schedule to
//! the base delay.

use std::time::Duration as StdDuration;

use ifi_sim::{backoff_delay, RelConfig};

/// Per-peer reconnect backoff state.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: RelConfig,
    salt: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule. `salt` keys the jitter stream — use the peer id
    /// so concurrent reconnectors spread out deterministically.
    pub fn new(cfg: RelConfig, salt: u64) -> Self {
        Backoff {
            cfg,
            salt,
            attempt: 0,
        }
    }

    /// The delay to wait before the next reconnect attempt, advancing the
    /// schedule: `base_rto * 2^attempt`, capped at `max_rto`, plus a
    /// jitter of at most half the base RTO.
    pub fn next_delay(&mut self) -> StdDuration {
        let d = backoff_delay(&self.cfg, self.attempt, self.salt);
        self.attempt = self.attempt.saturating_add(1);
        StdDuration::from_micros(d.as_micros())
    }

    /// A successful health-check round-trip: the link is live again, so
    /// the schedule resets to the base delay.
    pub fn on_health_ok(&mut self) {
        self.attempt = 0;
    }

    /// Reconnect attempts made since the last healthy round-trip.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_until_the_cap() {
        let cfg = RelConfig::default();
        let mut b = Backoff::new(cfg.clone(), 42);
        let mut prev = StdDuration::ZERO;
        let cap = StdDuration::from_micros(cfg.max_rto.as_micros())
            + StdDuration::from_micros(cfg.base_rto.as_micros()) / 2;
        for _ in 0..24 {
            let d = b.next_delay();
            assert!(d <= cap, "delay {d:?} exceeds cap {cap:?}");
            assert!(d >= prev.min(StdDuration::from_micros(cfg.max_rto.as_micros())));
            prev = d;
        }
    }

    #[test]
    fn health_ok_resets_the_schedule() {
        let mut b = Backoff::new(RelConfig::default(), 7);
        let first = b.next_delay();
        let _ = b.next_delay();
        let _ = b.next_delay();
        assert_eq!(b.attempt(), 3);
        b.on_health_ok();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.next_delay(), first, "reset must replay the schedule");
    }

    #[test]
    fn schedule_is_deterministic_per_salt() {
        let seq = |salt| {
            let mut b = Backoff::new(RelConfig::default(), salt);
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2), "different salts must jitter apart");
    }

    mod props {
        use super::*;
        use ifi_sim::Duration;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every delay of every schedule stays within
            /// `max_rto + base_rto / 2` (cap plus maximal jitter), no
            /// matter the tuning, the salt, or how deep the attempt
            /// counter runs — including past the point where `2^attempt`
            /// would overflow.
            #[test]
            fn delays_never_exceed_the_cap(
                salt in any::<u64>(),
                base_ms in 1u64..=2_000,
                cap_mult in 1u64..=32,
                attempts in 1usize..=80,
            ) {
                let cfg = RelConfig {
                    base_rto: Duration::from_millis(base_ms),
                    max_rto: Duration::from_millis(base_ms * cap_mult),
                    ..RelConfig::default()
                };
                let cap = StdDuration::from_micros(
                    cfg.max_rto.as_micros() + cfg.base_rto.as_micros() / 2,
                );
                let mut b = Backoff::new(cfg, salt);
                for _ in 0..attempts {
                    prop_assert!(b.next_delay() <= cap);
                }
            }

            /// The schedule is a pure function of `(cfg, salt)`: replaying
            /// it yields identical delays, and a health-check reset makes
            /// the continuation replay the schedule from the start.
            #[test]
            fn schedule_replays_deterministically_and_resets(
                salt in any::<u64>(),
                reset_after in 1usize..=12,
            ) {
                let cfg = RelConfig::default();
                let fresh: Vec<_> = {
                    let mut b = Backoff::new(cfg.clone(), salt);
                    (0..reset_after).map(|_| b.next_delay()).collect()
                };
                let mut b = Backoff::new(cfg, salt);
                let before: Vec<_> = (0..reset_after).map(|_| b.next_delay()).collect();
                prop_assert_eq!(&before, &fresh, "same (cfg, salt) must replay");
                b.on_health_ok();
                prop_assert_eq!(b.attempt(), 0);
                let after: Vec<_> = (0..reset_after).map(|_| b.next_delay()).collect();
                prop_assert_eq!(&after, &fresh, "reset must restart the schedule");
            }
        }
    }
}
