//! The per-peer node loop and the in-process channel transport.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration as StdDuration, Instant};

use ifi_sim::{
    AllUp, Effect, EffectBuf, Effects, EventSink, MetricsReport, NodeEvent, PeerId, SansIo,
    SimTime, TimerToken,
};

/// How long an idle node loop sleeps between checks for shutdown when it
/// has no armed timer to bound the wait.
pub const IDLE_WAIT: StdDuration = StdDuration::from_millis(50);

/// One input delivered to a node's channel.
pub(crate) enum Input<M> {
    /// A protocol message from `from`.
    Msg {
        /// The sending peer.
        from: PeerId,
        /// The payload.
        msg: M,
    },
    /// Orderly shutdown: the node loop exits and returns its core.
    Stop,
}

/// State shared by every peer thread of one run.
pub(crate) struct Shared {
    /// The metrics sink; locked once per activation so an effect batch
    /// applies atomically (driver obligation #1).
    pub(crate) sink: Mutex<EventSink>,
    /// The run's time origin; `now` handed to cores is elapsed time since
    /// this instant.
    pub(crate) epoch: Instant,
    /// Frames pushed onto the fabric (sends routed), for frame-overhead
    /// accounting distinct from the metered protocol bytes.
    pub(crate) frames: Mutex<u64>,
}

impl Shared {
    pub(crate) fn new(peer_count: usize) -> Self {
        Shared {
            sink: Mutex::new(EventSink::new(peer_count)),
            epoch: Instant::now(),
            frames: Mutex::new(0),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// How a node's sends reach other peers — in-process channel clones or a
/// TCP socket toward the loopback hub.
pub(crate) trait Route<M>: Send + 'static {
    /// Carries `msg` from `from` to `to`. Delivery failures (a peer
    /// already shut down) are swallowed: the transport is best-effort at
    /// teardown, exactly like a real socket.
    fn send(&mut self, from: PeerId, to: PeerId, msg: &M);
}

/// Channel fabric: every node holds a sender clone for every peer.
pub(crate) struct ChannelRoute<M> {
    pub(crate) peers: Vec<Sender<Input<M>>>,
}

impl<M: Clone + Send + 'static> Route<M> for ChannelRoute<M> {
    fn send(&mut self, from: PeerId, to: PeerId, msg: &M) {
        let _ = self.peers[to.index()].send(Input::Msg {
            from,
            msg: msg.clone(),
        });
    }
}

/// One peer's thread: the sans-io core plus the driver state the DES
/// kernel would otherwise hold for it.
pub(crate) struct NodeRunner<P: SansIo, R> {
    pub(crate) id: PeerId,
    pub(crate) node: P,
    pub(crate) route: R,
    pub(crate) shared: Arc<Shared>,
    pub(crate) outputs: Sender<(PeerId, P::Output)>,
    pub(crate) universe: usize,
    next_token: u64,
    /// Armed timers: absolute deadline, protocol token, tag. Small per
    /// node, so linear scans beat a heap (and removal on cancel is
    /// trivial, discharging driver obligation #2).
    timers: Vec<(Instant, TimerToken, P::Timer)>,
    scratch: EffectBuf<P>,
}

impl<P, R> NodeRunner<P, R>
where
    P: SansIo,
    R: Route<P::Msg>,
{
    pub(crate) fn new(
        id: PeerId,
        node: P,
        route: R,
        shared: Arc<Shared>,
        outputs: Sender<(PeerId, P::Output)>,
        universe: usize,
    ) -> Self {
        NodeRunner {
            id,
            node,
            route,
            shared,
            outputs,
            universe,
            next_token: 0,
            timers: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Runs one core activation and applies its effect batch atomically
    /// under the shared sink lock, in emission order.
    fn dispatch(&mut self, ev: NodeEvent<P::Msg, P::Timer>) {
        let mut fx = Effects::from_parts(std::mem::take(&mut self.scratch), self.next_token);
        let now = self.shared.now();
        self.node.on_event(ev, now, &AllUp(self.universe), &mut fx);
        let (mut buf, next_token) = fx.into_parts();
        self.next_token = next_token;
        let mut sink = self.shared.sink.lock().expect("metrics sink poisoned");
        let mut frames = 0u64;
        for effect in buf.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    sink.record(self.id, class, bytes);
                    self.route.send(self.id, to, &msg);
                    frames += 1;
                }
                Effect::SetTimer { token, delay, tag } => {
                    let deadline = Instant::now() + StdDuration::from_micros(delay.as_micros());
                    self.timers.push((deadline, token, tag));
                }
                Effect::CancelTimer { token } => {
                    self.timers.retain(|&(_, t, _)| t != token);
                }
                Effect::Charge { class, bytes } => sink.record_piggyback(self.id, class, bytes),
                Effect::MarkPhase { label } => sink.mark(label),
                Effect::Warn { label } => sink.warn(label),
                Effect::Deliver(out) => {
                    let _ = self.outputs.send((self.id, out));
                }
            }
        }
        // The handler mark is scoped to this activation; clearing it
        // before the lock drops keeps attribution batch-atomic.
        sink.clear_mark();
        drop(sink);
        if frames > 0 {
            *self.shared.frames.lock().expect("frame counter poisoned") += frames;
        }
        self.scratch = buf;
    }

    /// Index of the due timer with the earliest deadline, if any.
    fn due_timer(&self, now: Instant) -> Option<usize> {
        self.timers
            .iter()
            .enumerate()
            .filter(|(_, &(d, _, _))| d <= now)
            .min_by_key(|(_, &(d, _, _))| d)
            .map(|(i, _)| i)
    }

    /// The node loop: start, then alternate between due timers and
    /// incoming messages until [`Input::Stop`] (or fabric teardown).
    pub(crate) fn run(mut self, rx: Receiver<Input<P::Msg>>) -> P {
        self.dispatch(NodeEvent::Start);
        loop {
            while let Some(pos) = self.due_timer(Instant::now()) {
                let (_, _, tag) = self.timers.remove(pos);
                self.dispatch(NodeEvent::Timer { tag });
            }
            let now = Instant::now();
            let wait = self
                .timers
                .iter()
                .map(|&(d, _, _)| d.saturating_duration_since(now))
                .min()
                .unwrap_or(IDLE_WAIT);
            match rx.recv_timeout(wait) {
                Ok(Input::Msg { from, msg }) => self.dispatch(NodeEvent::Message { from, msg }),
                Ok(Input::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        self.node.on_stop();
        self.node
    }
}

/// The result of one transport run.
#[derive(Debug)]
pub struct RunOutcome<P: SansIo> {
    /// Results the cores handed to the driver via `Effect::Deliver`, in
    /// arrival order at the collector.
    pub outputs: Vec<(PeerId, P::Output)>,
    /// The metered per-phase, per-class byte report — same methodology as
    /// a DES run, so the two reconcile directly.
    pub report: MetricsReport,
    /// The final protocol cores, indexed by peer, for post-run accessor
    /// inspection (mirrors `World::peer`).
    pub nodes: Vec<P>,
    /// Frames pushed onto the fabric (one per routed send) — multiply by
    /// the hub header width for transport framing overhead, which the
    /// paper metric excludes.
    pub frames_sent: u64,
    /// Wall-clock duration of the run.
    pub elapsed: StdDuration,
}

/// Runs `nodes` over the in-process channel fabric until `want_outputs`
/// results arrive (or `max_wait` elapses), then shuts down and returns
/// the outcome.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_channel<P>(nodes: Vec<P>, want_outputs: usize, max_wait: StdDuration) -> RunOutcome<P>
where
    P: SansIo + Send + 'static,
    P::Msg: Send,
    P::Timer: Send,
    P::Output: Send,
{
    let n = nodes.len();
    let shared = Arc::new(Shared::new(n));
    let (out_tx, out_rx) = mpsc::channel();
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let handles: Vec<_> = nodes
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(i, (node, rx))| {
            let runner = NodeRunner::new(
                PeerId::new(i),
                node,
                ChannelRoute { peers: txs.clone() },
                Arc::clone(&shared),
                out_tx.clone(),
                n,
            );
            thread::Builder::new()
                .name(format!("peer-{i}"))
                .spawn(move || runner.run(rx))
                .expect("spawning peer thread failed")
        })
        .collect();
    let outputs = collect_outputs(&out_rx, want_outputs, max_wait);
    for tx in &txs {
        let _ = tx.send(Input::Stop);
    }
    let nodes = handles
        .into_iter()
        .map(|h| h.join().expect("peer thread panicked"))
        .collect();
    finish(shared, outputs, nodes)
}

/// Drains the output channel until `want` results or the deadline.
pub(crate) fn collect_outputs<O>(
    rx: &Receiver<(PeerId, O)>,
    want: usize,
    max_wait: StdDuration,
) -> Vec<(PeerId, O)> {
    let deadline = Instant::now() + max_wait;
    let mut outputs = Vec::new();
    while outputs.len() < want {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match rx.recv_timeout(left) {
            Ok(o) => outputs.push(o),
            Err(_) => break,
        }
    }
    outputs
}

/// Snapshots the shared state into a [`RunOutcome`].
pub(crate) fn finish<P: SansIo>(
    shared: Arc<Shared>,
    outputs: Vec<(PeerId, P::Output)>,
    nodes: Vec<P>,
) -> RunOutcome<P> {
    let report = shared.sink.lock().expect("metrics sink poisoned").report();
    let frames_sent = *shared.frames.lock().expect("frame counter poisoned");
    let elapsed = shared.epoch.elapsed();
    RunOutcome {
        outputs,
        report,
        nodes,
        frames_sent,
        elapsed,
    }
}
