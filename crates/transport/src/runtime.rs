//! The per-peer node loop, the supervised runtime, and the in-process
//! channel fabric.
//!
//! Architecture: one thread per peer runs the sans-io core behind a
//! *bounded* mailbox; every thread reports to the main-thread supervisor
//! over one merged control channel ([`Ctl`]). The supervisor owns the
//! fault timeline of a [`ChaosPlan`] (crashes, resets), the per-peer
//! reconnect loop (capped exponential backoff + health-check pings, see
//! [`crate::supervisor::Backoff`]), and final teardown. Message routing
//! goes through a [`Fabric`] — in-process channels here, TCP loopback in
//! [`crate::tcp`] — so chaos injection and supervision are fabric-
//! agnostic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use ifi_sim::{
    AllUp, Effect, EffectBuf, Effects, EventSink, MetricsReport, NodeEvent, PeerId, RelConfig,
    SansIo, SimTime, TimerToken,
};

use crate::chaos::{ChaosPlan, ChaosState, Verdict};
use crate::supervisor::Backoff;

/// How long an idle node loop sleeps between checks for shutdown/crash
/// flags when no armed timer bounds the wait. Also the upper bound on the
/// latency of a stop or crash taking effect.
pub const IDLE_WAIT: StdDuration = StdDuration::from_millis(50);

/// Bounded mailbox depth per peer. A full mailbox sheds the frame (with a
/// metered `mailbox-shed` warning) instead of blocking the sender — the
/// transport never deadlocks on backpressure, and a reliability envelope
/// recovers the shed frame like any other loss.
pub const MAILBOX_CAP: usize = 4096;

/// How long teardown waits for every peer thread to hand back its core
/// before declaring the run wedged.
pub(crate) const JOIN_DEADLINE: StdDuration = StdDuration::from_secs(30);

/// One input delivered to a node's mailbox.
pub(crate) enum Input<M> {
    /// A protocol message from `from`.
    Msg {
        /// The sending peer.
        from: PeerId,
        /// The payload.
        msg: M,
    },
    /// Shutdown nudge: wakes the loop so it observes its stop flag
    /// immediately instead of at the next `IDLE_WAIT` tick.
    Stop,
}

/// Per-peer control flags the supervisor flips and the node loop polls.
#[derive(Debug, Default)]
pub(crate) struct PeerFlags {
    /// Orderly shutdown: exit the loop and hand the core back.
    pub(crate) stop: AtomicBool,
    /// Chaos crash: exit *now*, abandoning armed timers and mailbox
    /// contents, and hand the core back for a later restart.
    pub(crate) crashed: AtomicBool,
}

/// Everything a node thread reports to the supervisor, merged into one
/// channel so the main loop can wait on a single receiver.
pub(crate) enum Ctl<P: SansIo> {
    /// A core delivered a finished result.
    Output(PeerId, P::Output),
    /// A node thread exited (stop or crash) and hands back its state.
    Exited(PeerId, NodeExit<P>),
    /// A peer's own link to the fabric failed (send error or inbound
    /// connection loss) — the supervisor should start reconnecting.
    LinkDown(PeerId),
    /// A health-check ping completed its round-trip.
    Pong(PeerId),
}

/// The state a node thread hands back on exit, sufficient to respawn it.
pub(crate) struct NodeExit<P: SansIo> {
    pub(crate) node: P,
    pub(crate) next_token: u64,
}

/// State shared by every peer thread of one run.
pub(crate) struct Shared {
    /// The metrics sink; locked once per activation so an effect batch
    /// applies atomically (driver obligation #1).
    pub(crate) sink: Mutex<EventSink>,
    /// The run's time origin; `now` handed to cores is elapsed time since
    /// this instant, and chaos windows are measured against it.
    pub(crate) epoch: Instant,
    /// Frames pushed onto the fabric (sends routed), for frame-overhead
    /// accounting distinct from the metered protocol bytes.
    pub(crate) frames: Mutex<u64>,
}

impl Shared {
    pub(crate) fn new(peer_count: usize) -> Self {
        Shared {
            sink: Mutex::new(EventSink::new(peer_count)),
            epoch: Instant::now(),
            frames: Mutex::new(0),
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Outcome of routing one frame, reported to the *sending* node so it can
/// meter and react without the fabric touching the (already held) sink
/// lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendStatus {
    /// The frame entered the fabric (it may still meet chaos en route).
    Sent,
    /// The destination mailbox was full; the frame was load-shed.
    Shed,
    /// The sender's own link is severed; the supervisor must redial.
    LinkDown,
}

/// How a node's sends reach other peers, and how the supervisor manages
/// link lifecycle — in-process channels or a TCP loopback hub.
pub(crate) trait Fabric<M>: Send + Sync + 'static {
    /// Routes `msg` from `from` to `to`. Must not block and must not
    /// touch the shared metrics sink (callers may hold its lock).
    fn send(&self, from: PeerId, to: PeerId, msg: &M) -> SendStatus;
    /// Severs `peer`'s link (crash teardown or connection reset): sends
    /// from and to the peer fail until [`Fabric::redial`].
    fn sever(&self, peer: PeerId);
    /// Re-establishes `peer`'s link. `false` means the attempt failed and
    /// the supervisor should back off and retry.
    fn redial(&self, peer: PeerId) -> bool;
    /// Requests a health-check round-trip for `peer`; a [`Ctl::Pong`]
    /// reaches the supervisor if (and only if) the link is healthy.
    fn ping(&self, peer: PeerId);
    /// Tears the fabric down at end of run, unblocking any helper
    /// threads it spawned.
    fn teardown(&self);
}

/// The per-peer bounded mailboxes, behind a registry so a crashed peer's
/// mailbox can be replaced on restart without re-plumbing senders.
pub(crate) struct Mailboxes<M> {
    slots: Vec<Mutex<Option<SyncSender<Input<M>>>>>,
    /// Frames load-shed on full mailboxes, for [`RunOutcome::shed_frames`].
    pub(crate) shed: AtomicU64,
}

/// Outcome of a mailbox delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    Ok,
    /// Mailbox full — frame shed (already counted).
    Shed,
    /// No live mailbox (peer crashed or already gone) — frame dropped
    /// like a send into a dead connection.
    Down,
}

impl<M> Mailboxes<M> {
    pub(crate) fn new(n: usize) -> Self {
        Mailboxes {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            shed: AtomicU64::new(0),
        }
    }

    pub(crate) fn register(&self, peer: PeerId, tx: SyncSender<Input<M>>) {
        *self.slots[peer.index()]
            .lock()
            .expect("mailbox registry poisoned") = Some(tx);
    }

    pub(crate) fn deregister(&self, peer: PeerId) {
        *self.slots[peer.index()]
            .lock()
            .expect("mailbox registry poisoned") = None;
    }

    /// Attempts a non-blocking delivery into `to`'s mailbox.
    pub(crate) fn deliver(&self, to: PeerId, input: Input<M>) -> Delivery {
        let slot = self.slots[to.index()]
            .lock()
            .expect("mailbox registry poisoned");
        match slot.as_ref() {
            None => Delivery::Down,
            Some(tx) => match tx.try_send(input) {
                Ok(()) => Delivery::Ok,
                Err(TrySendError::Full(_)) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    Delivery::Shed
                }
                Err(TrySendError::Disconnected(_)) => Delivery::Down,
            },
        }
    }
}

/// Shared hook for fabric helper threads to raise supervisor events
/// (pongs from ping round-trips, link-down reports from reader threads).
pub(crate) type CtlHook = Arc<dyn Fn(PeerId) + Send + Sync>;

/// A deferred delivery job: fire this closure at the given instant.
type DelayedJob = (Instant, Box<dyn FnOnce() + Send>);

/// A single helper thread that delivers delayed (chaos-held) frames at
/// their due time.
pub(crate) struct Courier {
    tx: Mutex<Option<Sender<DelayedJob>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Courier {
    pub(crate) fn new() -> Self {
        let (tx, rx) = mpsc::channel::<(Instant, Box<dyn FnOnce() + Send>)>();
        let handle = thread::Builder::new()
            .name("chaos-courier".into())
            .spawn(move || {
                while let Ok((due, job)) = rx.recv() {
                    let wait = due.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        thread::sleep(wait);
                    }
                    job();
                }
            })
            .expect("spawning courier thread failed");
        Courier {
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
        }
    }

    pub(crate) fn schedule(&self, due: Instant, job: Box<dyn FnOnce() + Send>) {
        if let Some(tx) = self.tx.lock().expect("courier poisoned").as_ref() {
            let _ = tx.send((due, job));
        }
    }

    /// Drops the queue and joins the thread (pending jobs still run).
    pub(crate) fn shutdown(&self) {
        self.tx.lock().expect("courier poisoned").take();
        if let Some(h) = self.handle.lock().expect("courier poisoned").take() {
            let _ = h.join();
        }
    }
}

/// Channel fabric: delivery into the bounded mailbox registry, with chaos
/// verdicts applied on the send path (the channel analogue of injecting
/// at the TCP hub).
pub(crate) struct ChannelFabric<M> {
    pub(crate) mailboxes: Arc<Mailboxes<M>>,
    chaos: Arc<ChaosState>,
    shared: Arc<Shared>,
    courier: Courier,
    /// Severed links; a severed peer can neither send nor receive, the
    /// in-process stand-in for a reset TCP connection.
    down: Vec<AtomicBool>,
    pong: CtlHook,
}

impl<M> ChannelFabric<M> {
    pub(crate) fn new(
        n: usize,
        mailboxes: Arc<Mailboxes<M>>,
        chaos: Arc<ChaosState>,
        shared: Arc<Shared>,
        pong: CtlHook,
    ) -> Self {
        ChannelFabric {
            mailboxes,
            chaos,
            shared,
            courier: Courier::new(),
            down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            pong,
        }
    }

    fn deliver(&self, to: PeerId, from: PeerId, msg: M) -> Delivery {
        if self.down[to.index()].load(Ordering::Relaxed) {
            return Delivery::Down;
        }
        self.mailboxes.deliver(to, Input::Msg { from, msg })
    }
}

impl<M: Clone + Send + 'static> Fabric<M> for ChannelFabric<M> {
    fn send(&self, from: PeerId, to: PeerId, msg: &M) -> SendStatus {
        if self.down[from.index()].load(Ordering::Relaxed) {
            return SendStatus::LinkDown;
        }
        match self.chaos.judge(self.shared.epoch.elapsed(), from, to) {
            Verdict::Drop => SendStatus::Sent,
            Verdict::Deliver => match self.deliver(to, from, msg.clone()) {
                Delivery::Shed => SendStatus::Shed,
                _ => SendStatus::Sent,
            },
            Verdict::Duplicate => {
                let first = self.deliver(to, from, msg.clone());
                let _ = self.deliver(to, from, msg.clone());
                match first {
                    Delivery::Shed => SendStatus::Shed,
                    _ => SendStatus::Sent,
                }
            }
            Verdict::Delay(d) => {
                let mailboxes = Arc::clone(&self.mailboxes);
                let msg = msg.clone();
                self.courier.schedule(
                    Instant::now() + d,
                    Box::new(move || {
                        let _ = mailboxes.deliver(to, Input::Msg { from, msg });
                    }),
                );
                SendStatus::Sent
            }
        }
    }

    fn sever(&self, peer: PeerId) {
        self.down[peer.index()].store(true, Ordering::Relaxed);
    }

    fn redial(&self, peer: PeerId) -> bool {
        self.down[peer.index()].store(false, Ordering::Relaxed);
        true
    }

    fn ping(&self, peer: PeerId) {
        if !self.down[peer.index()].load(Ordering::Relaxed) {
            (self.pong)(peer);
        }
    }

    fn teardown(&self) {
        self.courier.shutdown();
    }
}

/// One peer's thread: the sans-io core plus the driver state the DES
/// kernel would otherwise hold for it.
pub(crate) struct NodeRunner<P: SansIo, F> {
    pub(crate) id: PeerId,
    pub(crate) node: P,
    pub(crate) fabric: Arc<F>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) ctl: Sender<Ctl<P>>,
    pub(crate) flags: Arc<PeerFlags>,
    pub(crate) universe: usize,
    next_token: u64,
    /// Armed timers: absolute deadline, protocol token, tag. Small per
    /// node, so linear scans beat a heap (and removal on cancel is
    /// trivial, discharging driver obligation #2).
    timers: Vec<(Instant, TimerToken, P::Timer)>,
    scratch: EffectBuf<P>,
    /// Dedup for link-down reports: raised once per down transition.
    link_reported: bool,
}

impl<P, F> NodeRunner<P, F>
where
    P: SansIo,
    F: Fabric<P::Msg>,
{
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: PeerId,
        node: P,
        next_token: u64,
        fabric: Arc<F>,
        shared: Arc<Shared>,
        ctl: Sender<Ctl<P>>,
        flags: Arc<PeerFlags>,
        universe: usize,
    ) -> Self {
        NodeRunner {
            id,
            node,
            fabric,
            shared,
            ctl,
            flags,
            universe,
            next_token,
            timers: Vec::new(),
            scratch: Vec::new(),
            link_reported: false,
        }
    }

    /// Runs one core activation and applies its effect batch atomically
    /// under the shared sink lock, in emission order.
    fn dispatch(&mut self, ev: NodeEvent<P::Msg, P::Timer>) {
        let mut fx = Effects::from_parts(std::mem::take(&mut self.scratch), self.next_token);
        let now = self.shared.now();
        self.node.on_event(ev, now, &AllUp(self.universe), &mut fx);
        let (mut buf, next_token) = fx.into_parts();
        self.next_token = next_token;
        let mut sink = self.shared.sink.lock().expect("metrics sink poisoned");
        let mut frames = 0u64;
        let mut link_down = false;
        for effect in buf.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    // Charge at send, like the DES kernel: metered bytes
                    // are independent of what the fabric does next.
                    sink.record(self.id, class, bytes);
                    frames += 1;
                    match self.fabric.send(self.id, to, &msg) {
                        SendStatus::Sent => {}
                        SendStatus::Shed => sink.warn("mailbox-shed"),
                        SendStatus::LinkDown => link_down = true,
                    }
                }
                Effect::SetTimer { token, delay, tag } => {
                    let deadline = Instant::now() + StdDuration::from_micros(delay.as_micros());
                    self.timers.push((deadline, token, tag));
                }
                Effect::CancelTimer { token } => {
                    self.timers.retain(|&(_, t, _)| t != token);
                }
                Effect::Charge { class, bytes } => sink.record_piggyback(self.id, class, bytes),
                Effect::MarkPhase { label } => sink.mark(label),
                Effect::Warn { label } => sink.warn(label),
                Effect::Deliver(out) => {
                    let _ = self.ctl.send(Ctl::Output(self.id, out));
                }
            }
        }
        // The handler mark is scoped to this activation; clearing it
        // before the lock drops keeps attribution batch-atomic.
        sink.clear_mark();
        drop(sink);
        if frames > 0 {
            *self.shared.frames.lock().expect("frame counter poisoned") += frames;
        }
        if link_down && !self.link_reported {
            self.link_reported = true;
            let _ = self.ctl.send(Ctl::LinkDown(self.id));
        } else if !link_down {
            self.link_reported = false;
        }
        self.scratch = buf;
    }

    /// Index of the due timer with the earliest deadline, if any.
    fn due_timer(&self, now: Instant) -> Option<usize> {
        self.timers
            .iter()
            .enumerate()
            .filter(|(_, &(d, _, _))| d <= now)
            .min_by_key(|(_, &(d, _, _))| d)
            .map(|(i, _)| i)
    }

    /// The node loop: start, then alternate between due timers and
    /// incoming messages until the stop or crash flag is raised. Always
    /// hands the core back to the supervisor via [`Ctl::Exited`].
    pub(crate) fn run(mut self, rx: Receiver<Input<P::Msg>>) {
        self.dispatch(NodeEvent::Start);
        loop {
            if self.flags.stop.load(Ordering::Relaxed) {
                break;
            }
            if self.flags.crashed.load(Ordering::Relaxed) {
                break;
            }
            while let Some(pos) = self.due_timer(Instant::now()) {
                let (_, _, tag) = self.timers.remove(pos);
                self.dispatch(NodeEvent::Timer { tag });
            }
            let now = Instant::now();
            // The wait is capped at IDLE_WAIT so stop/crash flags are
            // observed promptly even under a distant timer deadline.
            let wait = self
                .timers
                .iter()
                .map(|&(d, _, _)| d.saturating_duration_since(now))
                .min()
                .unwrap_or(IDLE_WAIT)
                .min(IDLE_WAIT);
            match rx.recv_timeout(wait) {
                Ok(Input::Msg { from, msg }) => self.dispatch(NodeEvent::Message { from, msg }),
                Ok(Input::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        self.node.on_stop();
        let _ = self.ctl.send(Ctl::Exited(
            self.id,
            NodeExit {
                node: self.node,
                next_token: self.next_token,
            },
        ));
    }
}

/// The result of one transport run.
#[derive(Debug)]
pub struct RunOutcome<P: SansIo> {
    /// Results the cores handed to the driver via `Effect::Deliver`, in
    /// arrival order at the supervisor. For certified protocol runs the
    /// output carries the census certificate (`Complete` / `Partial`)
    /// alongside the answer.
    pub outputs: Vec<(PeerId, P::Output)>,
    /// The metered per-phase, per-class byte report — same methodology as
    /// a DES run, so the two reconcile directly.
    pub report: MetricsReport,
    /// The final protocol cores, indexed by peer, for post-run accessor
    /// inspection (mirrors `World::peer`).
    pub nodes: Vec<P>,
    /// Frames pushed onto the fabric (one per routed send) — multiply by
    /// the hub header width for transport framing overhead, which the
    /// paper metric excludes.
    pub frames_sent: u64,
    /// Peer threads crashed by the chaos plan and restarted by the
    /// supervisor.
    pub restarts: u64,
    /// Frames load-shed on full mailboxes (each also raised a
    /// `mailbox-shed` warning in the report).
    pub shed_frames: u64,
    /// Frames the chaos layer dropped (probabilistic drops plus partition
    /// severs).
    pub chaos_drops: u64,
    /// Wall-clock duration of the run.
    pub elapsed: StdDuration,
}

/// Per-peer supervision state in the main loop.
struct Sup<P: SansIo> {
    exited: Option<NodeExit<P>>,
    handle: Option<JoinHandle<()>>,
    restart_due: Option<Instant>,
    redial_due: Option<Instant>,
    link_down: bool,
    backoff: Backoff,
}

/// The chaos timeline, precomputed against the run epoch.
enum Action {
    Crash(PeerId, StdDuration),
    Reset(PeerId),
}

/// Everything `supervise` needs, bundled so channel and TCP runners share
/// the loop verbatim.
pub(crate) struct Supervised<P: SansIo, F> {
    pub(crate) fabric: Arc<F>,
    pub(crate) mailboxes: Arc<Mailboxes<P::Msg>>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) chaos: Arc<ChaosState>,
    pub(crate) flags: Vec<Arc<PeerFlags>>,
    pub(crate) ctl_tx: Sender<Ctl<P>>,
    pub(crate) ctl_rx: Receiver<Ctl<P>>,
}

impl<P, F> Supervised<P, F>
where
    P: SansIo + Send + 'static,
    P::Msg: Send + 'static,
    P::Timer: Send,
    P::Output: Send,
    F: Fabric<P::Msg>,
{
    /// Creates and registers a fresh bounded mailbox for `id`, returning
    /// the receive half. Registration is separate from spawning so the
    /// initial spawn can register *every* mailbox before any peer's
    /// `Start` runs — otherwise an eager first send races the rest of the
    /// fleet's registration and is dropped as `Down`.
    fn register_mailbox(&self, id: PeerId) -> Receiver<Input<P::Msg>> {
        let (tx, rx) = mpsc::sync_channel(MAILBOX_CAP);
        self.mailboxes.register(id, tx);
        rx
    }

    /// Spawns one peer thread consuming an already-registered mailbox.
    fn spawn_runner(
        &self,
        id: PeerId,
        node: P,
        next_token: u64,
        rx: Receiver<Input<P::Msg>>,
    ) -> JoinHandle<()> {
        let runner = NodeRunner::new(
            id,
            node,
            next_token,
            Arc::clone(&self.fabric),
            Arc::clone(&self.shared),
            self.ctl_tx.clone(),
            Arc::clone(&self.flags[id.index()]),
            self.flags.len(),
        );
        thread::Builder::new()
            .name(format!("peer-{}", id.index()))
            .spawn(move || runner.run(rx))
            .expect("spawning peer thread failed")
    }

    /// Registers a fresh mailbox and spawns the peer in one step — the
    /// restart path, where the rest of the fleet is already live.
    fn spawn_peer(&self, id: PeerId, node: P, next_token: u64) -> JoinHandle<()> {
        let rx = self.register_mailbox(id);
        self.spawn_runner(id, node, next_token, rx)
    }

    /// The supervisor main loop: drives the chaos timeline, restarts
    /// crashed peers, reconnects severed links, and collects outputs
    /// until `want_outputs` results (or `max_wait`); then shuts every
    /// thread down, joins them within [`JOIN_DEADLINE`], and snapshots
    /// the outcome.
    ///
    /// # Panics
    ///
    /// Panics if a peer thread panics or fails to exit by the deadline.
    pub(crate) fn supervise(
        self,
        nodes: Vec<P>,
        want_outputs: usize,
        max_wait: StdDuration,
    ) -> RunOutcome<P> {
        let n = nodes.len();
        let epoch = self.shared.epoch;
        let rel = RelConfig::default();
        let mut sup: Vec<Sup<P>> = (0..n)
            .map(|i| Sup {
                exited: None,
                handle: None,
                restart_due: None,
                redial_due: None,
                link_down: false,
                backoff: Backoff::new(rel.clone(), i as u64),
            })
            .collect();
        // Register every mailbox before any peer starts: a `Start` that
        // sends eagerly must find the whole fleet reachable.
        let rxs: Vec<_> = (0..n)
            .map(|i| self.register_mailbox(PeerId::new(i)))
            .collect();
        for ((i, node), rx) in nodes.into_iter().enumerate().zip(rxs) {
            sup[i].handle = Some(self.spawn_runner(PeerId::new(i), node, 0, rx));
        }
        let mut graveyard: Vec<JoinHandle<()>> = Vec::new();
        let mut restarts = 0u64;
        let mut outputs = Vec::new();

        let mut timeline: Vec<(Instant, Action)> = self
            .chaos
            .plan
            .crashes
            .iter()
            .map(|c| (epoch + c.at, Action::Crash(c.peer, c.restart_after)))
            .chain(
                self.chaos
                    .plan
                    .resets
                    .iter()
                    .map(|r| (epoch + r.at, Action::Reset(r.peer))),
            )
            .collect();
        timeline.sort_by_key(|&(t, _)| t);
        let mut ti = 0;

        let deadline = Instant::now() + max_wait;
        loop {
            let now = Instant::now();
            // 1. Fire due chaos actions.
            while ti < timeline.len() && timeline[ti].0 <= now {
                match timeline[ti].1 {
                    Action::Crash(p, restart_after) => {
                        self.flags[p.index()].crashed.store(true, Ordering::Relaxed);
                        self.mailboxes.deregister(p);
                        self.fabric.sever(p);
                        sup[p.index()].restart_due = Some(timeline[ti].0 + restart_after);
                    }
                    Action::Reset(p) => {
                        self.fabric.sever(p);
                        sup[p.index()].link_down = true;
                        // First redial immediately; backoff thereafter.
                        sup[p.index()].redial_due = Some(now);
                    }
                }
                ti += 1;
            }
            // 2. Restart crashed peers whose downtime has elapsed (and
            // whose thread has handed the core back).
            for (i, s) in sup.iter_mut().enumerate() {
                if let (Some(due), true) = (s.restart_due, s.exited.is_some()) {
                    if due <= now {
                        let exit = s.exited.take().expect("checked above");
                        let p = PeerId::new(i);
                        self.flags[i].crashed.store(false, Ordering::Relaxed);
                        self.fabric.redial(p);
                        if let Some(h) = s.handle.take() {
                            graveyard.push(h);
                        }
                        s.handle = Some(self.spawn_peer(p, exit.node, exit.next_token));
                        s.restart_due = None;
                        restarts += 1;
                    }
                }
                // 3. Reconnect severed links under backoff; each
                // successful redial is confirmed by a health-check ping,
                // whose pong resets the schedule.
                if let Some(due) = s.redial_due {
                    if due <= now && s.restart_due.is_none() && s.exited.is_none() {
                        let p = PeerId::new(i);
                        if self.fabric.redial(p) {
                            self.fabric.ping(p);
                        }
                        s.redial_due = Some(now + s.backoff.next_delay());
                    }
                }
            }
            if outputs.len() >= want_outputs {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // 4. Sleep until the next due action (or a control event).
            let mut wake = deadline;
            if ti < timeline.len() {
                wake = wake.min(timeline[ti].0);
            }
            for s in &sup {
                if let Some(d) = s.restart_due {
                    wake = wake.min(d);
                }
                if let Some(d) = s.redial_due {
                    wake = wake.min(d);
                }
            }
            match self
                .ctl_rx
                .recv_timeout(wake.saturating_duration_since(now))
            {
                Ok(Ctl::Output(p, o)) => outputs.push((p, o)),
                Ok(Ctl::Exited(p, exit)) => sup[p.index()].exited = Some(exit),
                Ok(Ctl::LinkDown(p)) => {
                    let s = &mut sup[p.index()];
                    if !s.link_down && !self.flags[p.index()].crashed.load(Ordering::Relaxed) {
                        s.link_down = true;
                        self.fabric.sever(p);
                        s.redial_due = Some(Instant::now() + s.backoff.next_delay());
                    }
                }
                Ok(Ctl::Pong(p)) => {
                    let s = &mut sup[p.index()];
                    s.link_down = false;
                    s.redial_due = None;
                    s.backoff.on_health_ok();
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Shutdown: raise stop flags, nudge mailboxes, and collect every
        // core (threads exit within IDLE_WAIT of the flag).
        for (i, flags) in self.flags.iter().enumerate() {
            flags.stop.store(true, Ordering::Relaxed);
            let _ = self.mailboxes.deliver(PeerId::new(i), Input::Stop);
        }
        let join_by = Instant::now() + JOIN_DEADLINE;
        while sup.iter().any(|s| s.exited.is_none()) {
            let left = join_by.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.ctl_rx.recv_timeout(left) {
                Ok(Ctl::Exited(p, exit)) => sup[p.index()].exited = Some(exit),
                Ok(Ctl::Output(p, o)) => outputs.push((p, o)),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for (i, s) in sup.iter_mut().enumerate() {
            if let Some(h) = s.handle.take() {
                h.join().expect("peer thread panicked");
            }
            let exit = s
                .exited
                .take()
                .unwrap_or_else(|| panic!("peer {i} failed to exit by the join deadline"));
            nodes.push(exit.node);
        }
        for h in graveyard {
            h.join().expect("crashed peer thread panicked");
        }
        self.fabric.teardown();

        let report = self
            .shared
            .sink
            .lock()
            .expect("metrics sink poisoned")
            .report();
        let frames_sent = *self.shared.frames.lock().expect("frame counter poisoned");
        let elapsed = self.shared.epoch.elapsed();
        RunOutcome {
            outputs,
            report,
            nodes,
            frames_sent,
            restarts,
            shed_frames: self.mailboxes.shed.load(Ordering::Relaxed),
            chaos_drops: self.chaos.drops(),
            elapsed,
        }
    }
}

/// Runs `nodes` over the in-process channel fabric until `want_outputs`
/// results arrive (or `max_wait` elapses), then shuts down and returns
/// the outcome. Equivalent to [`run_channel_chaos`] with an inert plan.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_channel<P>(nodes: Vec<P>, want_outputs: usize, max_wait: StdDuration) -> RunOutcome<P>
where
    P: SansIo + Send + 'static,
    P::Msg: Send + 'static,
    P::Timer: Send,
    P::Output: Send,
{
    run_channel_chaos(nodes, want_outputs, max_wait, ChaosPlan::none())
}

/// Runs `nodes` over the in-process channel fabric under `plan`: frames
/// meet seeded drops/duplication/delays and partition windows on the
/// fabric, scheduled peers crash (thread torn down, mailbox and timers
/// lost) and are restarted by the supervisor, and severed links reconnect
/// under capped exponential backoff with health-check pings.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_channel_chaos<P>(
    nodes: Vec<P>,
    want_outputs: usize,
    max_wait: StdDuration,
    plan: ChaosPlan,
) -> RunOutcome<P>
where
    P: SansIo + Send + 'static,
    P::Msg: Send + 'static,
    P::Timer: Send,
    P::Output: Send,
{
    let n = nodes.len();
    let shared = Arc::new(Shared::new(n));
    let chaos = Arc::new(ChaosState::new(plan));
    let mailboxes = Arc::new(Mailboxes::new(n));
    let (ctl_tx, ctl_rx) = mpsc::channel();
    let pong_tx = ctl_tx.clone();
    let pong: CtlHook = Arc::new(move |p| {
        let _ = pong_tx.send(Ctl::Pong(p));
    });
    let fabric = Arc::new(ChannelFabric::new(
        n,
        Arc::clone(&mailboxes),
        Arc::clone(&chaos),
        Arc::clone(&shared),
        pong,
    ));
    let flags: Vec<Arc<PeerFlags>> = (0..n).map(|_| Arc::new(PeerFlags::default())).collect();
    Supervised {
        fabric,
        mailboxes,
        shared,
        chaos,
        flags,
        ctl_tx,
        ctl_rx,
    }
    .supervise(nodes, want_outputs, max_wait)
}
