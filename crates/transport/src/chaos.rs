//! Seed-replayable fault injection for the threaded transport.
//!
//! [`ChaosPlan`] is the transport-side sibling of the simulator's
//! `FaultPlan`: the same declarative vocabulary (probabilistic drops,
//! duplication, delays, time-windowed partitions) plus the faults only a
//! real runtime can express — connection resets and peer-thread crashes
//! with delayed restarts. A plan maps onto the DES vocabulary via
//! [`ChaosPlan::fault_plan`], which is what lets the chaos-equivalence
//! suite run *the same* failure scenario under both drivers and hold them
//! to the same certified answer and the same metered byte classes.
//!
//! Randomness comes from one seeded [`DetRng`] behind a mutex: the
//! *decision stream* (the sequence of drop/duplicate/delay draws) is a
//! pure function of the seed, replayable across runs. Which frame meets
//! which decision still depends on thread interleaving — real transports
//! have no deterministic event order, and the protocol's exactness must
//! not depend on one. Partition and crash windows consume no randomness
//! at all (mirroring `FaultPlan::partitioned`), so they hit deterministic
//! wall-clock windows regardless of the draw sequence.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration as StdDuration;

use ifi_sim::{DetRng, Duration, FaultPlan, PeerId, SimTime};

/// A wall-clock-windowed partition: while `[from, until)` is active
/// (measured from the run's epoch), frames with exactly one endpoint in
/// `group` are severed.
#[derive(Debug, Clone)]
pub struct ChaosPartition {
    /// Window start, relative to the run epoch.
    pub from: StdDuration,
    /// Window end (exclusive), relative to the run epoch.
    pub until: StdDuration,
    /// One side of the partition; the complement is the other side.
    pub group: BTreeSet<PeerId>,
}

impl ChaosPartition {
    fn severs(&self, elapsed: StdDuration, a: PeerId, b: PeerId) -> bool {
        elapsed >= self.from
            && elapsed < self.until
            && (self.group.contains(&a) != self.group.contains(&b))
    }
}

/// A scheduled peer-thread crash: at `at` the peer's thread is torn down
/// (mailbox and armed timers lost, connection severed); after
/// `restart_after` the supervisor respawns it and re-delivers `Start`,
/// which a crash-survivable core answers with its re-send path.
#[derive(Debug, Clone, Copy)]
pub struct CrashPoint {
    /// The peer whose thread crashes.
    pub peer: PeerId,
    /// Crash instant, relative to the run epoch.
    pub at: StdDuration,
    /// Downtime before the supervisor restarts the peer.
    pub restart_after: StdDuration,
}

/// A scheduled connection reset: at `at` the peer's link to the fabric is
/// severed (without touching the thread); the supervisor's reconnect loop
/// redials it under capped exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct ResetPoint {
    /// The peer whose connection is reset.
    pub peer: PeerId,
    /// Reset instant, relative to the run epoch.
    pub at: StdDuration,
}

/// A declarative, seed-replayable description of the faults the transport
/// injects — the runtime sibling of the simulator's `FaultPlan`.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed of the fault decision stream.
    pub seed: u64,
    /// Probability that a routed frame is silently dropped.
    pub drop: f64,
    /// Probability that a delivered frame arrives twice.
    pub duplicate: f64,
    /// Probability that a delivered frame is held back by `delay`.
    pub delay_probability: f64,
    /// Extra one-way delay when the delay draw fires.
    pub delay: StdDuration,
    /// Wall-clock partition windows.
    pub partitions: Vec<ChaosPartition>,
    /// Scheduled peer-thread crashes.
    pub crashes: Vec<CrashPoint>,
    /// Scheduled connection resets.
    pub resets: Vec<ResetPoint>,
}

impl ChaosPlan {
    /// An inert plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay_probability: 0.0,
            delay: StdDuration::ZERO,
            partitions: Vec::new(),
            crashes: Vec::new(),
            resets: Vec::new(),
        }
    }

    /// A plan that injects nothing (seed irrelevant).
    pub fn none() -> Self {
        ChaosPlan::new(0)
    }

    /// Sets the frame drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of [0,1]");
        self.drop = p;
        self
    }

    /// Sets the frame duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability out of [0,1]"
        );
        self.duplicate = p;
        self
    }

    /// Sets the delay probability and magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_delay(mut self, p: f64, delay: StdDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability out of [0,1]");
        self.delay_probability = p;
        self.delay = delay;
        self
    }

    /// Adds a partition window `[from, until)` severing `group` from its
    /// complement.
    pub fn with_partition(
        mut self,
        from: StdDuration,
        until: StdDuration,
        group: impl IntoIterator<Item = PeerId>,
    ) -> Self {
        self.partitions.push(ChaosPartition {
            from,
            until,
            group: group.into_iter().collect(),
        });
        self
    }

    /// Schedules a peer-thread crash at `at` with a restart after
    /// `restart_after` of downtime.
    pub fn with_crash(mut self, peer: PeerId, at: StdDuration, restart_after: StdDuration) -> Self {
        self.crashes.push(CrashPoint {
            peer,
            at,
            restart_after,
        });
        self
    }

    /// Schedules a connection reset for `peer` at `at`.
    pub fn with_reset(mut self, peer: PeerId, at: StdDuration) -> Self {
        self.resets.push(ResetPoint { peer, at });
        self
    }

    /// Whether this plan can never perturb a run — the chaos path is
    /// skipped entirely in that case, so an inert run behaves exactly
    /// like the pre-chaos transport.
    pub fn is_inert(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.delay_probability <= 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.resets.is_empty()
    }

    /// Whether an active partition window severs `(from, to)` at `elapsed`
    /// since the run epoch. Consumes no randomness.
    pub fn partitioned(&self, elapsed: StdDuration, from: PeerId, to: PeerId) -> bool {
        self.partitions.iter().any(|p| p.severs(elapsed, from, to))
    }

    /// The corresponding DES fault plan: the same drop / duplication /
    /// delay probabilities and the same partition windows translated onto
    /// simulated time. Crashes and resets have no `FaultPlan` analogue —
    /// the DES driver expresses them as `schedule_kill` / `schedule_revive`
    /// calls (see [`ChaosPlan::crash_schedule`]); a reset is invisible to
    /// the DES because its network has no connections to sever.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none()
            .with_drop(self.drop)
            .with_duplication(self.duplicate)
            .with_delay_spikes(
                self.delay_probability,
                Duration::from_micros(self.delay.as_micros() as u64),
            );
        for p in &self.partitions {
            plan = plan.with_partition(
                SimTime::from_micros(p.from.as_micros() as u64),
                SimTime::from_micros(p.until.as_micros() as u64),
                p.group.iter().copied(),
            );
        }
        plan
    }

    /// The crash timeline as DES `(kill_at, revive_at, peer)` triples, for
    /// the driver to install via `schedule_kill` / `schedule_revive`.
    pub fn crash_schedule(&self) -> Vec<(SimTime, SimTime, PeerId)> {
        self.crashes
            .iter()
            .map(|c| {
                let kill = SimTime::from_micros(c.at.as_micros() as u64);
                let revive = SimTime::from_micros((c.at + c.restart_after).as_micros() as u64);
                (kill, revive, c.peer)
            })
            .collect()
    }
}

/// What the chaos layer decides for one routed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Silently drop the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame back for the plan's delay, then deliver.
    Delay(StdDuration),
}

/// Shared runtime state of a chaos plan: the plan plus the seeded
/// decision stream.
#[derive(Debug)]
pub(crate) struct ChaosState {
    pub(crate) plan: ChaosPlan,
    rng: Mutex<DetRng>,
    /// Cached so the hot path skips the lock entirely for inert plans.
    inert: bool,
    /// Frames dropped by this plan (probabilistic plus partition severs).
    dropped: AtomicU64,
}

impl ChaosState {
    pub(crate) fn new(plan: ChaosPlan) -> Self {
        let rng = Mutex::new(DetRng::new(plan.seed));
        let inert = plan.is_inert();
        ChaosState {
            plan,
            rng,
            inert,
            dropped: AtomicU64::new(0),
        }
    }

    /// Frames dropped so far.
    pub(crate) fn drops(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Judges one frame. Partitions are checked first and consume no
    /// randomness; then drop, duplication, and delay draws in fixed order
    /// (the `FaultPlan` composition order).
    pub(crate) fn judge(&self, elapsed: StdDuration, from: PeerId, to: PeerId) -> Verdict {
        if self.inert {
            return Verdict::Deliver;
        }
        if self.plan.partitioned(elapsed, from, to) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        let mut rng = self.rng.lock().expect("chaos rng poisoned");
        if self.plan.drop > 0.0 && rng.chance(self.plan.drop) {
            drop(rng);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        if self.plan.duplicate > 0.0 && rng.chance(self.plan.duplicate) {
            return Verdict::Duplicate;
        }
        if self.plan.delay_probability > 0.0 && rng.chance(self.plan.delay_probability) {
            return Verdict::Delay(self.plan.delay);
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_judges_deliver() {
        let plan = ChaosPlan::none();
        assert!(plan.is_inert());
        let state = ChaosState::new(plan);
        for i in 0..100 {
            assert_eq!(
                state.judge(StdDuration::from_millis(i), PeerId::new(0), PeerId::new(1)),
                Verdict::Deliver
            );
        }
    }

    #[test]
    fn every_knob_activates_the_plan() {
        let p = PeerId::new(0);
        assert!(!ChaosPlan::new(1).with_drop(0.1).is_inert());
        assert!(!ChaosPlan::new(1).with_duplication(0.1).is_inert());
        assert!(!ChaosPlan::new(1)
            .with_delay(0.1, StdDuration::from_millis(5))
            .is_inert());
        assert!(!ChaosPlan::new(1)
            .with_partition(StdDuration::ZERO, StdDuration::from_secs(1), [p])
            .is_inert());
        assert!(!ChaosPlan::new(1)
            .with_crash(p, StdDuration::ZERO, StdDuration::from_millis(50))
            .is_inert());
        assert!(!ChaosPlan::new(1)
            .with_reset(p, StdDuration::ZERO)
            .is_inert());
    }

    #[test]
    fn decision_stream_is_replayable_from_the_seed() {
        let draws = |seed| {
            let state = ChaosState::new(
                ChaosPlan::new(seed)
                    .with_drop(0.3)
                    .with_duplication(0.2)
                    .with_delay(0.1, StdDuration::from_millis(2)),
            );
            (0..200)
                .map(|_| state.judge(StdDuration::ZERO, PeerId::new(0), PeerId::new(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "distinct seeds must diverge");
    }

    #[test]
    fn partitions_sever_deterministically_and_spend_no_randomness() {
        let state = ChaosState::new(ChaosPlan::new(3).with_partition(
            StdDuration::from_millis(10),
            StdDuration::from_millis(20),
            [PeerId::new(0)],
        ));
        let (a, b) = (PeerId::new(0), PeerId::new(1));
        assert_eq!(
            state.judge(StdDuration::from_millis(15), a, b),
            Verdict::Drop
        );
        assert_eq!(
            state.judge(StdDuration::from_millis(15), b, a),
            Verdict::Drop
        );
        assert_eq!(
            state.judge(StdDuration::from_millis(5), a, b),
            Verdict::Deliver
        );
        assert_eq!(
            state.judge(StdDuration::from_millis(20), a, b),
            Verdict::Deliver,
            "window is half-open"
        );
        // Same-side traffic unaffected mid-window.
        assert_eq!(
            state.judge(StdDuration::from_millis(15), PeerId::new(1), PeerId::new(2)),
            Verdict::Deliver
        );
    }

    #[test]
    fn fault_plan_mapping_preserves_probabilities_and_windows() {
        let plan = ChaosPlan::new(11)
            .with_drop(0.25)
            .with_duplication(0.5)
            .with_delay(0.125, StdDuration::from_millis(30))
            .with_partition(
                StdDuration::from_millis(100),
                StdDuration::from_millis(200),
                [PeerId::new(2), PeerId::new(3)],
            );
        let des = plan.fault_plan();
        assert_eq!(des.drop, 0.25);
        assert_eq!(des.duplicate, 0.5);
        assert_eq!(des.spike_probability, 0.125);
        assert_eq!(des.spike, Duration::from_millis(30));
        assert!(des.partitioned(
            SimTime::from_micros(150_000),
            PeerId::new(2),
            PeerId::new(4)
        ));
        assert!(!des.partitioned(
            SimTime::from_micros(250_000),
            PeerId::new(2),
            PeerId::new(4)
        ));
    }

    #[test]
    fn crash_schedule_translates_to_kill_revive_pairs() {
        let plan = ChaosPlan::new(5).with_crash(
            PeerId::new(7),
            StdDuration::from_millis(40),
            StdDuration::from_millis(60),
        );
        assert_eq!(
            plan.crash_schedule(),
            vec![(
                SimTime::from_micros(40_000),
                SimTime::from_micros(100_000),
                PeerId::new(7)
            )]
        );
    }
}
