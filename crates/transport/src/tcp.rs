//! TCP-loopback fabric: the same node loop, real sockets in between.
//!
//! Topology-wise this is a star: every peer holds one loopback connection
//! to a hub, and the hub forwards frames by destination. Framing is
//! `[from u32][to u32][len u32][payload]`, all big-endian; the payload is
//! whatever the protocol's [`WireCodec`] produced. The 12-byte routing
//! header is transport overhead, deliberately *not* metered into the
//! paper's byte counts (see [`RunOutcome::frames_sent`]).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration as StdDuration;

use ifi_sim::{PeerId, SansIo};

use crate::runtime::{collect_outputs, finish, Input, NodeRunner, Route, RunOutcome, Shared};
use crate::wire::WireCodec;

/// Frames larger than this are treated as stream corruption.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one `[from][to][len][payload]` frame.
fn write_frame(w: &mut impl Write, from: PeerId, to: PeerId, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(from.index() as u32).to_be_bytes());
    header[4..8].copy_from_slice(&(to.index() as u32).to_be_bytes());
    header[8..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(r: &mut impl Read) -> io::Result<Option<(PeerId, PeerId, Vec<u8>)>> {
    let mut header = [0u8; 12];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let from = u32::from_be_bytes(header[..4].try_into().unwrap());
    let to = u32::from_be_bytes(header[4..8].try_into().unwrap());
    let len = u32::from_be_bytes(header[8..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((
        PeerId::new(from as usize),
        PeerId::new(to as usize),
        payload,
    )))
}

/// A peer's sends encode through the codec and go to the hub.
struct TcpRoute<C> {
    stream: TcpStream,
    codec: Arc<C>,
}

impl<M, C: WireCodec<M>> Route<M> for TcpRoute<C> {
    fn send(&mut self, from: PeerId, to: PeerId, msg: &M) {
        // Teardown races (hub already gone) are swallowed like a closed
        // socket would be; encode failures mean the codec cannot carry
        // the protocol and must fail loudly.
        let payload = self.codec.encode(msg).expect("wire codec rejected message");
        let _ = write_frame(&mut self.stream, from, to, &payload);
    }
}

/// Runs `nodes` over a TCP loopback hub until `want_outputs` results
/// arrive (or `max_wait` elapses), then shuts down and returns the
/// outcome. `codec` carries `P::Msg` across the sockets.
///
/// # Errors
///
/// Fails if the loopback listener or any peer connection cannot be set
/// up.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_tcp<P, C>(
    nodes: Vec<P>,
    codec: C,
    want_outputs: usize,
    max_wait: StdDuration,
) -> io::Result<RunOutcome<P>>
where
    P: SansIo + Send + 'static,
    P::Msg: Send,
    P::Timer: Send,
    P::Output: Send,
    C: WireCodec<P::Msg>,
{
    let n = nodes.len();
    let codec = Arc::new(codec);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;

    // Accept hub-side connections while the main thread dials out.
    let accept = thread::spawn(move || -> io::Result<Vec<TcpStream>> {
        let mut conns: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (mut s, _) = listener.accept()?;
            let mut hello = [0u8; 4];
            s.read_exact(&mut hello)?;
            let id = u32::from_be_bytes(hello) as usize;
            s.set_nodelay(true)?;
            conns[id] = Some(s);
        }
        Ok(conns
            .into_iter()
            .map(|c| c.expect("peer never dialed"))
            .collect())
    });

    let mut peer_streams = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        s.write_all(&(i as u32).to_be_bytes())?;
        peer_streams.push(s);
    }
    let hub_streams = accept.join().expect("hub accept thread panicked")?;

    // Hub: one forwarder per inbound connection; writes to a destination
    // serialize through its mutex so concurrent frames never interleave.
    let dests: Arc<Vec<Mutex<TcpStream>>> = Arc::new(
        hub_streams
            .iter()
            .map(|s| Ok(Mutex::new(s.try_clone()?)))
            .collect::<io::Result<_>>()?,
    );
    let mut hub_handles = Vec::with_capacity(n);
    for s in &hub_streams {
        let mut reader = s.try_clone()?;
        let dests = Arc::clone(&dests);
        hub_handles.push(thread::spawn(move || {
            while let Ok(Some((from, to, payload))) = read_frame(&mut reader) {
                if to.index() >= dests.len() {
                    continue;
                }
                let mut out = dests[to.index()].lock().expect("hub stream poisoned");
                if write_frame(&mut *out, from, to, &payload).is_err() {
                    break;
                }
            }
        }));
    }

    // Node channels: each peer's mpsc receiver is fed by its socket
    // reader thread, so the node loop is transport-agnostic.
    let shared = Arc::new(Shared::new(n));
    let (out_tx, out_rx) = mpsc::channel();
    let mut txs: Vec<Sender<Input<P::Msg>>> = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut reader_handles = Vec::with_capacity(n);
    for (i, s) in peer_streams.iter().enumerate() {
        let mut reader = s.try_clone()?;
        let tx = txs[i].clone();
        let codec = Arc::clone(&codec);
        reader_handles.push(thread::spawn(move || {
            while let Ok(Some((from, _, payload))) = read_frame(&mut reader) {
                let msg = match codec.decode(&payload) {
                    Ok(m) => m,
                    // A frame the codec cannot parse is dropped like a
                    // corrupt datagram; the protocol's own reliability
                    // (if enabled) recovers.
                    Err(_) => continue,
                };
                if tx.send(Input::Msg { from, msg }).is_err() {
                    break;
                }
            }
        }));
    }

    let handles: Vec<_> = nodes
        .into_iter()
        .zip(rxs)
        .zip(peer_streams.iter())
        .enumerate()
        .map(|(i, ((node, rx), stream))| {
            let route = TcpRoute {
                stream: stream.try_clone().expect("cloning peer stream failed"),
                codec: Arc::clone(&codec),
            };
            let runner = NodeRunner::new(
                PeerId::new(i),
                node,
                route,
                Arc::clone(&shared),
                out_tx.clone(),
                n,
            );
            thread::Builder::new()
                .name(format!("peer-{i}"))
                .spawn(move || runner.run(rx))
                .expect("spawning peer thread failed")
        })
        .collect();

    let outputs = collect_outputs(&out_rx, want_outputs, max_wait);
    for tx in &txs {
        let _ = tx.send(Input::Stop);
    }
    let nodes: Vec<P> = handles
        .into_iter()
        .map(|h| h.join().expect("peer thread panicked"))
        .collect();

    // Tear the fabric down so reader and forwarder threads unblock.
    for s in peer_streams.iter().chain(hub_streams.iter()) {
        let _ = s.shutdown(Shutdown::Both);
    }
    for h in reader_handles.into_iter().chain(hub_handles) {
        let _ = h.join();
    }
    Ok(finish(shared, outputs, nodes))
}
