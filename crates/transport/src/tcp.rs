//! TCP-loopback fabric: the same supervised node loop, real sockets in
//! between.
//!
//! Topology-wise this is a star: every peer holds one loopback connection
//! to a hub, and the hub forwards frames by destination. Framing is
//! `[from u32][to u32][len u32][payload]`, all big-endian; the payload is
//! whatever the protocol's [`WireCodec`] produced. The 12-byte routing
//! header is transport overhead, deliberately *not* metered into the
//! paper's byte counts (see [`RunOutcome::frames_sent`]).
//!
//! Chaos is injected at the hub — the one place every frame crosses — so
//! drops, duplication, delays, and partition windows hit real serialized
//! traffic. Connection resets and crash teardowns sever a peer's socket;
//! the supervisor's reconnect loop redials through the hub's persistent
//! accept loop, which rebinds the peer's hub-side route on every fresh
//! hello. A zero-length payload addressed to its own sender is the
//! health-check ping: the hub routes it back like any frame, and the
//! peer's reader answers the supervisor with a pong — a real round-trip
//! over both socket directions.
//!
//! Malformed inbound bytes never panic the runtime: a frame that
//! overruns the length cap, truncates mid-header, or fails the protocol
//! codec disconnects that peer with a metered warning (`malformed-frame`
//! at the hub, `undecodable-frame` at a peer reader), and the supervisor
//! treats it like any other link failure.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use ifi_sim::{PeerId, SansIo};

use crate::chaos::{ChaosPlan, ChaosState, Verdict};
use crate::runtime::{
    Courier, Ctl, CtlHook, Delivery, Fabric, Input, Mailboxes, PeerFlags, RunOutcome, SendStatus,
    Shared, Supervised,
};
use crate::wire::WireCodec;

/// Frames larger than this are treated as stream corruption.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one `[from][to][len][payload]` frame.
pub(crate) fn write_frame(
    w: &mut impl Write,
    from: PeerId,
    to: PeerId,
    payload: &[u8],
) -> io::Result<()> {
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(from.index() as u32).to_be_bytes());
    header[4..8].copy_from_slice(&(to.index() as u32).to_be_bytes());
    header[8..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary. EOF
/// *inside* a header or payload is not clean — it is reported as an
/// error, so callers meter it as a malformed frame instead of a normal
/// disconnect.
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Option<(PeerId, PeerId, Vec<u8>)>> {
    let mut header = [0u8; 12];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended {got} bytes into a frame header"),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let from = u32::from_be_bytes(header[..4].try_into().unwrap());
    let to = u32::from_be_bytes(header[4..8].try_into().unwrap());
    let len = u32::from_be_bytes(header[8..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((
        PeerId::new(from as usize),
        PeerId::new(to as usize),
        payload,
    )))
}

/// The hub: a persistent accept loop plus one forwarder thread per
/// inbound connection. Chaos verdicts are applied here, to serialized
/// frames in flight.
struct Hub {
    addr: SocketAddr,
    accepting: Arc<AtomicBool>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    forwarders: Arc<Mutex<Vec<JoinHandle<()>>>>,
    dests: Arc<Vec<Mutex<Option<TcpStream>>>>,
    courier: Arc<Courier>,
}

impl Hub {
    fn start(n: usize, chaos: Arc<ChaosState>, shared: Arc<Shared>) -> io::Result<Hub> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let accepting = Arc::new(AtomicBool::new(true));
        let dests: Arc<Vec<Mutex<Option<TcpStream>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let forwarders: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let courier = Arc::new(Courier::new());

        let accept = {
            let accepting = Arc::clone(&accepting);
            let dests = Arc::clone(&dests);
            let forwarders = Arc::clone(&forwarders);
            let courier = Arc::clone(&courier);
            thread::Builder::new()
                .name("hub-accept".into())
                .spawn(move || {
                    while accepting.load(Ordering::Relaxed) {
                        let (mut s, _) = match listener.accept() {
                            Ok(conn) => conn,
                            Err(_) => break,
                        };
                        if !accepting.load(Ordering::Relaxed) {
                            break;
                        }
                        // Bounded hello so a silent dialer (e.g. the
                        // teardown nudge) cannot wedge the accept loop.
                        let _ = s.set_read_timeout(Some(StdDuration::from_secs(1)));
                        let mut hello = [0u8; 4];
                        if s.read_exact(&mut hello).is_err() {
                            continue;
                        }
                        let id = u32::from_be_bytes(hello) as usize;
                        if id >= n {
                            shared
                                .sink
                                .lock()
                                .expect("metrics sink poisoned")
                                .warn("malformed-frame");
                            continue;
                        }
                        let _ = s.set_read_timeout(None);
                        let _ = s.set_nodelay(true);
                        let writer = match s.try_clone() {
                            Ok(w) => w,
                            Err(_) => continue,
                        };
                        *dests[id].lock().expect("hub dest poisoned") = Some(writer);
                        let handle = Hub::spawn_forwarder(
                            s,
                            n,
                            Arc::clone(&dests),
                            Arc::clone(&chaos),
                            Arc::clone(&shared),
                            Arc::clone(&courier),
                        );
                        forwarders
                            .lock()
                            .expect("forwarder list poisoned")
                            .push(handle);
                    }
                })
                .expect("spawning hub accept thread failed")
        };
        Ok(Hub {
            addr,
            accepting,
            accept_handle: Mutex::new(Some(accept)),
            forwarders,
            dests,
            courier,
        })
    }

    /// Writes `payload` to `to`'s hub-side route; a write failure drops
    /// the frame and clears the stale route (the destination may redial
    /// later).
    fn forward(dests: &[Mutex<Option<TcpStream>>], from: PeerId, to: PeerId, payload: &[u8]) {
        let mut slot = dests[to.index()].lock().expect("hub dest poisoned");
        if let Some(s) = slot.as_mut() {
            if write_frame(s, from, to, payload).is_err() {
                *slot = None;
            }
        }
    }

    fn spawn_forwarder(
        mut reader: TcpStream,
        n: usize,
        dests: Arc<Vec<Mutex<Option<TcpStream>>>>,
        chaos: Arc<ChaosState>,
        shared: Arc<Shared>,
        courier: Arc<Courier>,
    ) -> JoinHandle<()> {
        thread::Builder::new()
            .name("hub-forward".into())
            .spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(Some((from, to, payload))) => {
                        if to.index() >= n || from.index() >= n {
                            // Garbage routing header: stream corruption —
                            // disconnect this peer.
                            shared
                                .sink
                                .lock()
                                .expect("metrics sink poisoned")
                                .warn("malformed-frame");
                            let _ = reader.shutdown(Shutdown::Both);
                            break;
                        }
                        match chaos.judge(shared.epoch.elapsed(), from, to) {
                            Verdict::Drop => {}
                            Verdict::Deliver => Hub::forward(&dests, from, to, &payload),
                            Verdict::Duplicate => {
                                Hub::forward(&dests, from, to, &payload);
                                Hub::forward(&dests, from, to, &payload);
                            }
                            Verdict::Delay(d) => {
                                let dests = Arc::clone(&dests);
                                courier.schedule(
                                    Instant::now() + d,
                                    Box::new(move || Hub::forward(&dests, from, to, &payload)),
                                );
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Truncated header/payload or oversized length:
                        // metered warning, then disconnect this peer.
                        shared
                            .sink
                            .lock()
                            .expect("metrics sink poisoned")
                            .warn("malformed-frame");
                        let _ = reader.shutdown(Shutdown::Both);
                        break;
                    }
                }
            })
            .expect("spawning hub forwarder failed")
    }

    fn shutdown(&self) {
        self.accepting.store(false, Ordering::Relaxed);
        // Unblock the accept loop with a helloless dial.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.lock().expect("hub poisoned").take() {
            let _ = h.join();
        }
        for d in self.dests.iter() {
            if let Some(s) = d.lock().expect("hub dest poisoned").take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<_> = self
            .forwarders
            .lock()
            .expect("forwarder list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        self.courier.shutdown();
    }
}

/// Shared innards of the TCP fabric, reachable from reader threads.
struct TcpInner<M, C> {
    addr: SocketAddr,
    codec: Arc<C>,
    /// Peer-side write halves, by peer; `None` = link severed.
    streams: Vec<Mutex<Option<TcpStream>>>,
    mailboxes: Arc<Mailboxes<M>>,
    shared: Arc<Shared>,
    pong: CtlHook,
    linkdown: CtlHook,
    tearing: AtomicBool,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M, C> TcpInner<M, C>
where
    M: Send + 'static,
    C: WireCodec<M>,
{
    /// Dials the hub as `peer`: connect, hello, install the write half,
    /// spawn the reader feeding the peer's mailbox.
    fn dial(self: &Arc<Self>, peer: PeerId) -> io::Result<()> {
        let mut s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        s.write_all(&(peer.index() as u32).to_be_bytes())?;
        let reader = s.try_clone()?;
        *self.streams[peer.index()]
            .lock()
            .expect("peer stream poisoned") = Some(s);
        let inner = Arc::clone(self);
        let handle = thread::Builder::new()
            .name(format!("peer-read-{}", peer.index()))
            .spawn(move || inner.read_loop(peer, reader))
            .expect("spawning peer reader failed");
        self.readers
            .lock()
            .expect("reader list poisoned")
            .push(handle);
        Ok(())
    }

    /// The peer-side reader: decodes inbound frames into the mailbox,
    /// answers health pings, and reports link loss to the supervisor.
    fn read_loop(self: Arc<Self>, me: PeerId, mut reader: TcpStream) {
        // EOF (`Ok(None)`) and read errors both end the loop; the hub
        // side meters malformed frames, the peer side only disconnects.
        while let Ok(Some((from, _, payload))) = read_frame(&mut reader) {
            // Zero-length self-addressed frame: the health ping made it
            // back from the hub — the round-trip holds.
            if from == me && payload.is_empty() {
                (self.pong)(me);
                continue;
            }
            match self.codec.decode(&payload) {
                Ok(msg) => {
                    if self.mailboxes.deliver(me, Input::Msg { from, msg }) == Delivery::Shed {
                        self.shared
                            .sink
                            .lock()
                            .expect("metrics sink poisoned")
                            .warn("mailbox-shed");
                    }
                }
                Err(_) => {
                    // A payload the protocol codec rejects is stream
                    // garbage: metered warning, then disconnect (never
                    // panic).
                    self.shared
                        .sink
                        .lock()
                        .expect("metrics sink poisoned")
                        .warn("undecodable-frame");
                    let _ = reader.shutdown(Shutdown::Both);
                    break;
                }
            }
        }
        // Sever the write half too, so sends observe the loss.
        if let Some(s) = self.streams[me.index()]
            .lock()
            .expect("peer stream poisoned")
            .take()
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        if !self.tearing.load(Ordering::Relaxed) {
            (self.linkdown)(me);
        }
    }
}

/// The TCP fabric: peer-side sockets plus the hub.
struct TcpFabric<M, C> {
    inner: Arc<TcpInner<M, C>>,
    hub: Hub,
}

impl<M, C> Fabric<M> for TcpFabric<M, C>
where
    M: Send + 'static,
    C: WireCodec<M>,
{
    fn send(&self, from: PeerId, to: PeerId, msg: &M) -> SendStatus {
        let payload = self
            .inner
            .codec
            .encode(msg)
            .expect("wire codec rejected message");
        let mut slot = self.inner.streams[from.index()]
            .lock()
            .expect("peer stream poisoned");
        match slot.as_mut() {
            None => SendStatus::LinkDown,
            Some(s) => {
                if write_frame(s, from, to, &payload).is_err() {
                    *slot = None;
                    SendStatus::LinkDown
                } else {
                    SendStatus::Sent
                }
            }
        }
    }

    fn sever(&self, peer: PeerId) {
        if let Some(s) = self.inner.streams[peer.index()]
            .lock()
            .expect("peer stream poisoned")
            .take()
        {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn redial(&self, peer: PeerId) -> bool {
        if self.inner.tearing.load(Ordering::Relaxed) {
            return false;
        }
        if self.inner.streams[peer.index()]
            .lock()
            .expect("peer stream poisoned")
            .is_some()
        {
            return true;
        }
        self.inner.dial(peer).is_ok()
    }

    fn ping(&self, peer: PeerId) {
        let mut slot = self.inner.streams[peer.index()]
            .lock()
            .expect("peer stream poisoned");
        if let Some(s) = slot.as_mut() {
            if write_frame(s, peer, peer, &[]).is_err() {
                *slot = None;
            }
        }
    }

    fn teardown(&self) {
        self.inner.tearing.store(true, Ordering::Relaxed);
        for i in 0..self.inner.streams.len() {
            self.sever(PeerId::new(i));
        }
        self.hub.shutdown();
        let handles: Vec<_> = self
            .inner
            .readers
            .lock()
            .expect("reader list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Runs `nodes` over a TCP loopback hub until `want_outputs` results
/// arrive (or `max_wait` elapses), then shuts down and returns the
/// outcome. `codec` carries `P::Msg` across the sockets. Equivalent to
/// [`run_tcp_chaos`] with an inert plan.
///
/// # Errors
///
/// Fails if the loopback listener or any peer connection cannot be set
/// up.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_tcp<P, C>(
    nodes: Vec<P>,
    codec: C,
    want_outputs: usize,
    max_wait: StdDuration,
) -> io::Result<RunOutcome<P>>
where
    P: SansIo + Send + 'static,
    P::Msg: Send + 'static,
    P::Timer: Send,
    P::Output: Send,
    C: WireCodec<P::Msg>,
{
    run_tcp_chaos(nodes, codec, want_outputs, max_wait, ChaosPlan::none())
}

/// Runs `nodes` over the TCP loopback hub under `plan`: serialized frames
/// meet seeded drops/duplication/delays and partition windows at the hub,
/// scheduled peers crash and restart under supervision, and severed
/// sockets redial through the hub's persistent accept loop with capped
/// exponential backoff and ping/pong health checks.
///
/// # Errors
///
/// Fails if the loopback listener or any peer connection cannot be set
/// up.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_tcp_chaos<P, C>(
    nodes: Vec<P>,
    codec: C,
    want_outputs: usize,
    max_wait: StdDuration,
    plan: ChaosPlan,
) -> io::Result<RunOutcome<P>>
where
    P: SansIo + Send + 'static,
    P::Msg: Send + 'static,
    P::Timer: Send,
    P::Output: Send,
    C: WireCodec<P::Msg>,
{
    let n = nodes.len();
    let shared = Arc::new(Shared::new(n));
    let chaos = Arc::new(ChaosState::new(plan));
    let mailboxes = Arc::new(Mailboxes::new(n));
    let (ctl_tx, ctl_rx) = mpsc::channel::<Ctl<P>>();
    let pong_tx = ctl_tx.clone();
    let pong: CtlHook = Arc::new(move |p| {
        let _ = pong_tx.send(Ctl::Pong(p));
    });
    let down_tx = ctl_tx.clone();
    let linkdown: CtlHook = Arc::new(move |p| {
        let _ = down_tx.send(Ctl::LinkDown(p));
    });

    let hub = Hub::start(n, Arc::clone(&chaos), Arc::clone(&shared))?;
    let inner = Arc::new(TcpInner {
        addr: hub.addr,
        codec: Arc::new(codec),
        streams: (0..n).map(|_| Mutex::new(None)).collect(),
        mailboxes: Arc::clone(&mailboxes),
        shared: Arc::clone(&shared),
        pong,
        linkdown,
        tearing: AtomicBool::new(false),
        readers: Mutex::new(Vec::new()),
    });
    for i in 0..n {
        inner.dial(PeerId::new(i))?;
    }
    let fabric = Arc::new(TcpFabric { inner, hub });
    let flags: Vec<Arc<PeerFlags>> = (0..n).map(|_| Arc::new(PeerFlags::default())).collect();
    Ok(Supervised {
        fabric,
        mailboxes,
        shared,
        chaos,
        flags,
        ctl_tx,
        ctl_rx,
    }
    .supervise(nodes, want_outputs, max_wait))
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;
    use std::thread;

    use super::*;

    #[test]
    fn frames_roundtrip_including_empty_payloads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, PeerId::new(3), PeerId::new(7), b"hello").unwrap();
        write_frame(&mut buf, PeerId::new(1), PeerId::new(1), b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((PeerId::new(3), PeerId::new(7), b"hello".to_vec()))
        );
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((PeerId::new(1), PeerId::new(1), Vec::new()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn truncated_header_is_an_error_not_a_clean_eof() {
        // 5 of the 12 header bytes, then EOF.
        let mut r = Cursor::new(vec![0u8; 5]);
        let err = read_frame(&mut r).expect_err("mid-header EOF must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, PeerId::new(0), PeerId::new(1), b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r).is_err(), "mid-payload EOF must error");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("oversized frame must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Polls the shared sink until `label` has been warned, or panics
    /// after ~2s — malformed input is handled asynchronously by hub
    /// threads.
    fn await_warning(shared: &Shared, label: &str) {
        for _ in 0..200 {
            let warned = shared
                .sink
                .lock()
                .expect("sink poisoned")
                .warnings()
                .iter()
                .any(|(l, _)| l == label);
            if warned {
                return;
            }
            thread::sleep(StdDuration::from_millis(10));
        }
        panic!(
            "no `{label}` warning within deadline: {:?}",
            shared.sink.lock().unwrap().warnings()
        );
    }

    fn test_hub(n: usize) -> (Hub, Arc<Shared>) {
        let shared = Arc::new(Shared::new(n));
        let chaos = Arc::new(ChaosState::new(ChaosPlan::none()));
        let hub = Hub::start(n, chaos, Arc::clone(&shared)).expect("hub start");
        (hub, shared)
    }

    #[test]
    fn hub_warns_and_drops_a_connection_with_an_out_of_range_hello() {
        let (hub, shared) = test_hub(2);
        let mut s = TcpStream::connect(hub.addr).unwrap();
        s.write_all(&99u32.to_be_bytes()).unwrap();
        await_warning(&shared, "malformed-frame");
        hub.shutdown();
    }

    #[test]
    fn hub_warns_and_disconnects_on_an_oversized_frame() {
        let (hub, shared) = test_hub(2);
        let mut s = TcpStream::connect(hub.addr).unwrap();
        s.write_all(&0u32.to_be_bytes()).unwrap();
        // Valid routing header with a length beyond the cap.
        s.write_all(&0u32.to_be_bytes()).unwrap();
        s.write_all(&1u32.to_be_bytes()).unwrap();
        s.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        await_warning(&shared, "malformed-frame");
        // The forwarder disconnected us: reads see EOF.
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap_or(0), 0);
        hub.shutdown();
    }

    #[test]
    fn hub_warns_on_a_truncated_frame() {
        let (hub, shared) = test_hub(2);
        let mut s = TcpStream::connect(hub.addr).unwrap();
        s.write_all(&0u32.to_be_bytes()).unwrap();
        // Half a routing header, then a hard close.
        s.write_all(&[0u8; 5]).unwrap();
        drop(s);
        await_warning(&shared, "malformed-frame");
        hub.shutdown();
    }

    #[test]
    fn hub_warns_on_a_garbage_destination() {
        let (hub, shared) = test_hub(2);
        let mut s = TcpStream::connect(hub.addr).unwrap();
        s.write_all(&0u32.to_be_bytes()).unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, PeerId::new(0), PeerId::new(513), b"x").unwrap();
        s.write_all(&frame).unwrap();
        await_warning(&shared, "malformed-frame");
        hub.shutdown();
    }

    #[test]
    fn hub_shutdown_joins_every_thread_without_traffic() {
        let (hub, _shared) = test_hub(3);
        hub.shutdown();
    }
}
