//! Wire encoding boundary for the TCP transport.
//!
//! The in-process channel transport moves `P::Msg` values directly; only
//! the TCP loopback hub needs bytes on a wire. [`WireCodec`] is the
//! pluggable (de)serializer a protocol supplies for its message type —
//! the `netfilter` crate implements it over its existing paper-width
//! `Codec`, so the bytes on the loopback socket are the very bytes the
//! cost model prices.

use std::fmt;

/// An encode/decode failure at the wire boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire codec error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// A thread-safe (de)serializer for protocol messages crossing the TCP
/// transport. Implementations must round-trip: `decode(encode(m)) == m`
/// up to protocol equivalence.
pub trait WireCodec<M>: Send + Sync + 'static {
    /// Serializes `msg` to bytes.
    fn encode(&self, msg: &M) -> Result<Vec<u8>, WireError>;
    /// Deserializes a message from `bytes` (the exact slice a peer
    /// framed, no trailing data).
    fn decode(&self, bytes: &[u8]) -> Result<M, WireError>;
}
