//! # netfilter-p2p — exact frequent items in P2P systems
//!
//! Umbrella crate re-exporting the whole workspace: the netFilter algorithm
//! (ICDCS 2008) and every substrate it runs on. See the `netfilter` crate
//! for the algorithm itself and the repository README for the tour.
//!
//! ```
//! use netfilter_p2p::prelude::*;
//!
//! let params = WorkloadParams { peers: 50, items: 1_000, ..WorkloadParams::default() };
//! let data = SystemData::generate(&params, 1);
//! let hierarchy = Hierarchy::balanced(50, 3);
//! let run = NetFilter::new(NetFilterConfig::default()).run(&hierarchy, &data);
//! assert!(run.frequent_items().iter().all(|&(_, v)| v >= run.threshold()));
//! ```

#![forbid(unsafe_code)]

pub use ifi_agg as agg;
pub use ifi_hierarchy as hierarchy;
pub use ifi_overlay as overlay;
pub use ifi_sim as sim;
pub use ifi_workload as workload;
pub use netfilter as core;

/// The names most programs need, in one import.
pub mod prelude {
    pub use ifi_agg::WireSizes;
    pub use ifi_hierarchy::Hierarchy;
    pub use ifi_overlay::Topology;
    pub use ifi_sim::{DetRng, PeerId};
    pub use ifi_workload::{GroundTruth, ItemId, SystemData, WorkloadParams};
    pub use netfilter::{NetFilter, NetFilterConfig, NetFilterRun, Threshold};
}
