//! `ifi` — command-line frequent-item queries on simulated P2P systems.
//!
//! ```text
//! ifi run     --peers 1000 --items 100000 --theta 1.0 --phi 0.01 --g 100 --f 3
//! ifi compare --peers 500  --items 50000  --phi 0.01          # netFilter vs naive vs approx
//! ifi tune    --peers 1000 --items 100000 --branches 8        # §IV-E sampling
//! ```
//!
//! All subcommands are deterministic per `--seed` and print the paper's
//! cost metric (average bytes per peer) next to the answer.

use std::process::ExitCode;

use ifi_hierarchy::Hierarchy;
use ifi_sim::DetRng;
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::{approx, naive, tuning, NetFilter, NetFilterConfig, Threshold, WireSizes};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Opts {
    command: String,
    peers: usize,
    items: u64,
    theta: f64,
    phi: f64,
    g: u32,
    f: u32,
    seed: u64,
    top: usize,
    branches: usize,
    draw_placement: bool,
    metrics: bool,
    metrics_json: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            command: String::new(),
            peers: 1000,
            items: 100_000,
            theta: 1.0,
            phi: 0.01,
            g: 100,
            f: 3,
            seed: 2008,
            top: 10,
            branches: 8,
            draw_placement: false,
            metrics: false,
            metrics_json: None,
        }
    }
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    opts.command = it
        .next()
        .ok_or("missing subcommand (run | compare | tune)")?
        .clone();
    if !matches!(opts.command.as_str(), "run" | "compare" | "tune") {
        return Err(format!("unknown subcommand `{}`", opts.command));
    }
    while let Some(flag) = it.next() {
        if flag == "--draw-placement" {
            opts.draw_placement = true;
            continue;
        }
        if flag == "--metrics" {
            opts.metrics = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parse_err = |what: &str| format!("cannot parse {what} from `{value}`");
        match flag.as_str() {
            "--peers" => opts.peers = value.parse().map_err(|_| parse_err("--peers"))?,
            "--items" => opts.items = value.parse().map_err(|_| parse_err("--items"))?,
            "--theta" => opts.theta = value.parse().map_err(|_| parse_err("--theta"))?,
            "--phi" => opts.phi = value.parse().map_err(|_| parse_err("--phi"))?,
            "--g" => opts.g = value.parse().map_err(|_| parse_err("--g"))?,
            "--f" => opts.f = value.parse().map_err(|_| parse_err("--f"))?,
            "--seed" => opts.seed = value.parse().map_err(|_| parse_err("--seed"))?,
            "--top" => opts.top = value.parse().map_err(|_| parse_err("--top"))?,
            "--branches" => opts.branches = value.parse().map_err(|_| parse_err("--branches"))?,
            "--metrics-json" => opts.metrics_json = Some(value.clone()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.peers == 0 || opts.items == 0 {
        return Err("--peers and --items must be positive".into());
    }
    if !(opts.phi > 0.0 && opts.phi <= 1.0) {
        return Err("--phi must be in (0, 1]".into());
    }
    Ok(opts)
}

fn build_system(opts: &Opts) -> (Hierarchy, SystemData) {
    let params = WorkloadParams {
        peers: opts.peers,
        items: opts.items,
        instances_per_item: 10,
        theta: opts.theta,
    };
    let data = if opts.draw_placement {
        SystemData::generate(&params, opts.seed)
    } else {
        SystemData::generate_paper(&params, opts.seed)
    };
    (Hierarchy::balanced(opts.peers, 3), data)
}

fn config(opts: &Opts) -> NetFilterConfig {
    NetFilterConfig::builder()
        .filter_size(opts.g)
        .filters(opts.f)
        .threshold(Threshold::Ratio(opts.phi))
        .hash_seed(opts.seed)
        .build()
}

fn cmd_run(opts: &Opts) {
    let (h, data) = build_system(opts);
    let want_report = opts.metrics || opts.metrics_json.is_some();
    let (run, report) = if want_report {
        let (run, report) = NetFilter::new(config(opts)).run_instrumented(&h, &data);
        (run, Some(report))
    } else {
        (NetFilter::new(config(opts)).run(&h, &data), None)
    };
    println!(
        "IFI(A, t={}) over N={} peers, n={} items (theta={}, v={})",
        run.threshold(),
        opts.peers,
        opts.items,
        opts.theta,
        data.total_value()
    );
    println!(
        "{} frequent items; showing top {}:",
        run.frequent_items().len(),
        opts.top.min(run.frequent_items().len())
    );
    for &(item, value) in run.frequent_items().iter().take(opts.top) {
        println!("  {item:>14}  {value:>12}");
    }
    let c = run.cost();
    println!(
        "cost: {:.1} B/peer (filtering {:.1} + dissemination {:.1} + aggregation {:.1})",
        c.avg_total(),
        c.avg_filtering(),
        c.avg_dissemination(),
        c.avg_aggregation()
    );
    println!(
        "candidates at root: {} ({} heavy + {} false positives, pruned before verification: rest of {} items)",
        run.counts().candidates_at_root,
        run.counts().heavy_items,
        run.counts().false_positives(),
        data.distinct_items(),
    );
    if let Some(report) = report {
        if opts.metrics {
            println!("{}", report.render_table());
        }
        if let Some(path) = &opts.metrics_json {
            match std::fs::write(path, report.to_json()) {
                Ok(()) => println!("metrics report written to {path}"),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
    }
}

fn cmd_compare(opts: &Opts) {
    let (h, data) = build_system(opts);
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(opts.phi);

    let nf = NetFilter::new(config(opts)).run(&h, &data);
    let nv = naive::run(&h, &data, Threshold::Ratio(opts.phi), &WireSizes::default());
    let (ag, af) = approx::ApproxRun::dimensions_for(opts.phi / 10.0, 0.01);
    let mut approx_cfg = config(opts);
    approx_cfg.filter_size = ag;
    approx_cfg.filters = af;
    let ap = approx::run(&h, &data, &approx_cfg);

    println!(
        "engine comparison at t = {t} (exact answer: {} items)",
        truth.frequent_items(t).len()
    );
    println!(
        "{:<26} {:>14} {:>10} {:>8}",
        "engine", "bytes/peer", "reported", "exact?"
    );
    println!("{}", "-".repeat(62));
    println!(
        "{:<26} {:>14.1} {:>10} {:>8}",
        "netFilter",
        nf.cost().avg_total(),
        nf.frequent_items().len(),
        "yes"
    );
    println!(
        "{:<26} {:>14.1} {:>10} {:>8}",
        "naive",
        nv.avg_bytes_per_peer(),
        nv.frequent_items().len(),
        "yes"
    );
    println!(
        "{:<26} {:>14.1} {:>10} {:>8}",
        format!("count-min (g={ag}, f={af})"),
        ap.avg_bytes_per_peer(),
        ap.items.len(),
        if ap.items.len() == truth.frequent_items(t).len() {
            "lucky"
        } else {
            "no"
        }
    );
    let (fp, fn_, verr) = truth.verify(t, nf.frequent_items());
    assert_eq!((fp, fn_, verr), (0, 0, 0), "netFilter exactness violated");
}

fn cmd_tune(opts: &Opts) {
    let (h, data) = build_system(opts);
    let tuned = tuning::tune(
        &h,
        &data,
        Threshold::Ratio(opts.phi),
        &ifi_agg::sampling::SamplingConfig {
            branches: opts.branches,
            items_per_peer: 200,
        },
        &WireSizes::default(),
        &mut DetRng::new(opts.seed ^ 0x7E57),
    );
    let s = &tuned.stats;
    println!(
        "sampling: {} peers over {} branches, {} items, {} bytes of traffic",
        s.sampled_peers, opts.branches, s.sampled_items, s.bytes
    );
    println!(
        "estimates: v_light_bar={:.2}, v_bar={:.2}, n_hat={}, r_hat={}",
        s.v_light_bar,
        s.v_bar_universe(data.total_value()),
        s.n_hat,
        s.r_hat
    );
    println!(
        "recommended setting: g = {}, f = {} (threshold t = {})",
        tuned.filter_size, tuned.filters, tuned.threshold
    );
    let run = NetFilter::new(tuned.to_config(WireSizes::default(), opts.seed)).run(&h, &data);
    println!(
        "running with it: {} frequent items at {:.1} B/peer",
        run.frequent_items().len(),
        run.cost().avg_total()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ifi <run|compare|tune> [--peers N] [--items N] [--theta F] \
                 [--phi F] [--g N] [--f N] [--seed N] [--top N] [--branches N] \
                 [--draw-placement] [--metrics] [--metrics-json <path>]"
            );
            ExitCode::from(2)
        }
        Ok(opts) => {
            match opts.command.as_str() {
                "run" => cmd_run(&opts),
                "compare" => cmd_compare(&opts),
                "tune" => cmd_tune(&opts),
                _ => unreachable!("validated by parse"),
            }
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults_and_overrides() {
        let o = parse(&sv(&["run"])).unwrap();
        assert_eq!(o.peers, 1000);
        let o = parse(&sv(&[
            "compare",
            "--peers",
            "50",
            "--items",
            "1000",
            "--phi",
            "0.1",
            "--g",
            "20",
            "--f",
            "2",
            "--seed",
            "7",
            "--draw-placement",
        ]))
        .unwrap();
        assert_eq!(o.command, "compare");
        assert_eq!((o.peers, o.items), (50, 1000));
        assert_eq!((o.g, o.f, o.seed), (20, 2, 7));
        assert!(o.draw_placement);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&sv(&[])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["run", "--peers"])).is_err());
        assert!(parse(&sv(&["run", "--peers", "zero"])).is_err());
        assert!(parse(&sv(&["run", "--phi", "1.5"])).is_err());
        assert!(parse(&sv(&["run", "--bogus", "1"])).is_err());
    }

    #[test]
    fn run_command_executes_end_to_end() {
        let opts = parse(&sv(&[
            "run", "--peers", "40", "--items", "500", "--top", "3",
        ]))
        .unwrap();
        cmd_run(&opts); // prints; must not panic
    }

    #[test]
    fn run_command_with_metrics_writes_json() {
        let path = std::env::temp_dir().join(format!("ifi_metrics_{}.json", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let opts = parse(&sv(&[
            "run",
            "--peers",
            "40",
            "--items",
            "500",
            "--metrics",
            "--metrics-json",
            &path_s,
        ]))
        .unwrap();
        assert!(opts.metrics);
        cmd_run(&opts);
        let json = std::fs::read_to_string(&path).expect("report written");
        assert!(json.contains("\"phases\""));
        assert!(json.contains("\"filtering\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compare_command_asserts_exactness_internally() {
        let opts = parse(&sv(&["compare", "--peers", "40", "--items", "800"])).unwrap();
        cmd_compare(&opts);
    }

    #[test]
    fn tune_command_executes() {
        let opts = parse(&sv(&[
            "tune",
            "--peers",
            "60",
            "--items",
            "2000",
            "--branches",
            "6",
        ]))
        .unwrap();
        cmd_tune(&opts);
    }
}
