//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Vendored so `cargo build --all-targets` / `cargo bench` work without
//! registry access. The statistical machinery of upstream criterion is
//! replaced with a plain timed loop: each benchmark runs a warm-up pass
//! plus `sample_size` timed samples and prints min/mean per-iteration
//! times. Good enough to smoke-run the benches and compare orders of
//! magnitude; not a replacement for upstream's analysis.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

/// Passed to benchmark closures; runs the measured loop.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, iterations) per sample, filled by `iter`.
    results: Vec<(Duration, u64)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, running enough iterations per sample to get a
    /// stable reading without taking unbounded wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + iteration-count calibration: aim for ~5ms per sample,
        // clamped to [1, 1000] iterations.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;

        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.results.push((t0.elapsed(), per_sample));
        }
    }

    fn report(&self, label: &str) {
        if self.results.is_empty() {
            println!("bench {label:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .results
            .iter()
            .map(|(d, n)| d.as_secs_f64() / *n as f64)
            .collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "bench {label:<40} min {:>12.3?} mean {:>12.3?} ({} samples)",
            Duration::from_secs_f64(min),
            Duration::from_secs_f64(mean),
            per_iter.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    // Keeps the driver borrowed for the group's lifetime, like upstream.
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Finishes the group (upstream writes reports here; the stub has
    /// already printed per-benchmark lines).
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`], accepting plain strings too.
pub trait IntoBenchmarkId {
    /// Converts self into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size.max(1);
        let mut b = Bencher::new(samples);
        f(&mut b);
        b.report(name);
        self
    }

    /// Upstream parses CLI args here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream writes summary reports here; no-op in the stub.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark `main` for `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut b = Bencher::new(3);
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            calls
        });
        assert!(calls > 3, "warm-up plus samples should call the routine");
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").render(), "p");
    }
}
