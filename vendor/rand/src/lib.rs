//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in network-restricted environments where the
//! crates.io registry is unreachable, so the handful of `rand` items the
//! codebase actually uses are vendored here: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through splitmix64. It is
//! deterministic across platforms and Rust versions, which is all the
//! workspace requires (every consumer seeds explicitly via
//! `ifi_sim::DetRng`); it does **not** reproduce the byte streams of the
//! upstream `rand` crate's `StdRng`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Opaque error type mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, fallibly (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that the `Standard` distribution can produce.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable over a range without bias.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`; `hi` is exclusive.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws a value in `[lo, hi]`, inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draws a `u64` in `[0, span)` without modulo bias (Lemire's method with a
/// widening multiply plus rejection).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span && low < span.wrapping_neg() {
            // Fast accept once the low word clears the bias zone.
            return (m >> 64) as u64;
        }
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: every value is valid.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    ///
    /// Stands in for `rand::rngs::StdRng`; statistically strong and
    /// portable, but not stream-compatible with upstream `rand`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; splitmix64
            // seeding (seed_from_u64) never produces one, but guard the
            // raw from_seed path too.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_a_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
        }

        #[test]
        fn unit_f64_stays_in_range() {
            let mut r = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                let x: f64 = r.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn gen_range_is_in_bounds_and_hits_ends() {
            let mut r = StdRng::seed_from_u64(4);
            let mut seen = [false; 8];
            for _ in 0..10_000 {
                let x = r.gen_range(0u64..8);
                seen[x as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "range values missing: {seen:?}");
            for _ in 0..1_000 {
                let x = r.gen_range(3u64..=5);
                assert!((3..=5).contains(&x));
            }
        }

        #[test]
        fn full_width_inclusive_range_works() {
            let mut r = StdRng::seed_from_u64(5);
            let _ = r.gen_range(0u64..=u64::MAX);
        }

        #[test]
        fn fill_bytes_covers_partial_chunks() {
            let mut r = StdRng::seed_from_u64(6);
            let mut buf = [0u8; 13];
            r.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        }
    }
}
