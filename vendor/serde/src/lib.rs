//! Offline, API-compatible subset of the `serde` crate.
//!
//! The workspace's `serde` feature gates `#[derive(Serialize,
//! Deserialize)]` attributes and `T: Serialize + DeserializeOwned`
//! bounds; no code path serializes through serde (exporters hand-roll
//! JSON). This stub provides the trait names and a derive that emits
//! marker impls, so the feature compiles in network-restricted
//! environments. Swapping the real `serde` back in requires only a
//! registry-reachable build — the API surface used is identical.

#![forbid(unsafe_code)]

/// Marker form of `serde::Serialize`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub mod de {
    //! Deserialization traits.

    /// Marker form of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
