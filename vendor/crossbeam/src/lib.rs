//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Vendored so the workspace builds without registry access. Backed by
//! `std` primitives: scoped threads map to `std::thread::scope`, channels
//! to `std::sync::mpsc`, and [`queue::SegQueue`] to a mutexed `VecDeque`.
//! Semantics relevant to this workspace (ordering, panic propagation,
//! sender-disconnect termination) match upstream; raw throughput does not
//! need to, since the only consumer is the experiment harness fan-out.

#![forbid(unsafe_code)]

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue (mutex-backed stand-in for crossbeam's
    /// segmented lock-free queue).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes an element to the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Pops from the front, if nonempty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod utils {
    //! Utility types.

    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to reduce false sharing.
    ///
    /// The stub keeps the alignment hint (128-byte, matching upstream on
    /// x86-64) but otherwise just wraps the value.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

pub mod channel {
    //! MPMC-ish channels (std `mpsc`-backed; supports the multi-producer,
    //! single-consumer pattern the workspace uses).

    pub use std::sync::mpsc::{IntoIter, RecvError, SendError};
    use std::sync::mpsc::{
        Receiver as StdReceiver, Sender as StdSender, SyncSender as StdSyncSender,
    };

    /// The sending half of a channel. As upstream, the same handle type
    /// serves both [`unbounded`] and [`bounded`] channels; a bounded
    /// sender blocks once the channel holds `cap` undelivered values.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Inner<T>,
    }

    #[derive(Debug)]
    enum Inner<T> {
        Unbounded(StdSender<T>),
        Bounded(StdSyncSender<T>),
    }

    // Manual impl: cloning the handle must not require `T: Clone`,
    // matching upstream crossbeam (a derive would add that bound).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: match &self.inner {
                    Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                    Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
                },
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing if the receiver is gone. On a bounded
        /// channel this blocks while the buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Inner::Unbounded(tx) => tx.send(value),
                Inner::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: StdReceiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            Sender {
                inner: Inner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel buffering at most `cap` undelivered values;
    /// senders block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (
            Sender {
                inner: Inner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

pub mod thread {
    //! Scoped threads, bridged to `std::thread::scope`.
    //!
    //! Differences from upstream worth knowing: a panic in a spawned
    //! thread propagates when the scope joins (so callers observe it as a
    //! panic out of [`scope`] rather than an `Err`), which is strictly
    //! stricter than crossbeam's behavior and fine for the harness.

    /// A scope handle; spawned closures receive a reference to it so they
    /// can spawn further threads, mirroring crossbeam's signature.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument is this scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn queue_is_fifo() {
        let q = super::queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn scoped_threads_and_channels_compose() {
        let items: Vec<u32> = (0..64).collect();
        let q = super::queue::SegQueue::new();
        for (i, &x) in items.iter().enumerate() {
            q.push((i, x));
        }
        let mut out = vec![0u32; items.len()];
        super::thread::scope(|scope| {
            let (tx, rx) = super::channel::unbounded::<(usize, u32)>();
            for _ in 0..4 {
                let q = &q;
                let tx = tx.clone();
                scope.spawn(move |_| {
                    while let Some((i, x)) = q.pop() {
                        tx.send((i, x * 2)).expect("receiver alive");
                    }
                });
            }
            drop(tx);
            for (i, y) in rx {
                out[i] = y;
            }
        })
        .expect("no panics");
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_delivers_everything_under_backpressure() {
        // Capacity far below the item count: senders must block-and-resume
        // rather than drop, and per-sender FIFO order must hold.
        super::thread::scope(|scope| {
            let (tx, rx) = super::channel::bounded::<u32>(2);
            scope.spawn(move |_| {
                for x in 0..100 {
                    tx.send(x).expect("receiver alive");
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .expect("no panics");
    }

    #[test]
    fn bounded_sender_clones_share_the_channel() {
        let (tx, rx) = super::channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn cache_padded_derefs() {
        let mut v = super::utils::CachePadded::new(41);
        *v += 1;
        assert_eq!(*v, 42);
        assert_eq!(v.into_inner(), 42);
    }
}
