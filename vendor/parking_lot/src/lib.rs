//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Vendored so the workspace builds without registry access. Wraps `std`
//! locks with `parking_lot`'s non-poisoning, `Result`-free API. Declared
//! in the workspace dependency table for future subsystems; nothing in
//! the workspace requires upstream's slimmer lock representation yet.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that recovers from poisoning instead of surfacing it.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that recovers from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
