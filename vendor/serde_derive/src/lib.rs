//! Offline derive companion for the vendored `serde` stub.
//!
//! Emits marker-trait impls (`serde::Serialize` / `serde::Deserialize`)
//! for the derived type so that `#[cfg_attr(feature = "serde",
//! derive(serde::Serialize, serde::Deserialize))]` attributes and
//! `T: Serialize + DeserializeOwned` bounds compile without registry
//! access. No serialization logic is generated — the stub `serde` traits
//! carry none. Supports non-generic structs and enums, which covers every
//! derived type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following the `struct`/`enum`
/// keyword, skipping attributes and visibility.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tree in input.clone() {
        match tree {
            TokenTree::Ident(ident) => {
                let s = ident.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let Some(name) = type_name(&input) else {
        return "compile_error!(\"serde stub derive: could not find type name\");"
            .parse()
            .expect("valid error tokens");
    };
    // Reject generic types up front: emitting an unparameterized impl for
    // them would be wrong, and nothing in the workspace needs it.
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut after_name = false;
    for t in &tokens {
        match t {
            TokenTree::Ident(i) if i.to_string() == name => after_name = true,
            TokenTree::Punct(p) if after_name && p.as_char() == '<' => {
                return "compile_error!(\"serde stub derive: generic types unsupported\");"
                    .parse()
                    .expect("valid error tokens");
            }
            TokenTree::Group(_) => break,
            _ => {}
        }
    }
    trait_path
        .replace("__NAME__", &name)
        .parse()
        .expect("valid impl tokens")
}

/// Derives the stub `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Derives the stub `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}
