//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Vendored so the workspace builds without registry access. Provides
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits at the API
//! surface the `netfilter` codec uses. All multi-byte integer accessors
//! are big-endian, matching upstream `bytes`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: std::sync::Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::new(v),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data.as_slice() == other.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Empties the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt`.
    fn advance(&mut self, cnt: usize);
    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (as upstream `bytes` does).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian unsigned integer of `nbytes` bytes (1..=8).
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!((1..=8).contains(&nbytes), "get_uint width out of 1..=8");
        let mut v = 0u64;
        for &byte in &self.chunk()[..nbytes] {
            v = (v << 8) | byte as u64;
        }
        self.advance(nbytes);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends the low `nbytes` bytes of `v`, big-endian (1..=8).
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!((1..=8).contains(&nbytes), "put_uint width out of 1..=8");
        self.put_slice(&v.to_be_bytes()[8 - nbytes..]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_uint(0x01_02_03, 3);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 8);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_uint(3), 0x01_02_03);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn uint_widths_match_upstream_layout() {
        let mut buf = BytesMut::new();
        buf.put_uint(0x1122, 2);
        assert_eq!(&buf[..], &[0x11, 0x22]);
        let mut c: &[u8] = &buf;
        assert_eq!(c.get_uint(2), 0x1122);
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"hello".to_vec());
        assert_eq!(&a[1..3], b"el");
    }

    #[test]
    #[should_panic]
    fn reading_past_the_end_panics() {
        let mut c: &[u8] = &[1, 2];
        let _ = c.get_u32();
    }
}
