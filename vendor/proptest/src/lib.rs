//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace's property tests use a modest slice of proptest:
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`,
//! range/tuple strategies, `prop_map`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::{vec, btree_map}`, `prop::sample::select`,
//! `prop::bool::weighted`, and the `prop_assert*` macros. This vendored
//! stub implements exactly that surface over a deterministic RNG so the
//! suite runs without registry access.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs' strategy seeds,
//!   not a minimized counterexample. Failures replay deterministically
//!   because each test's RNG is seeded from the test name (override with
//!   `PROPTEST_SEED`).
//! * **Case counts** honor `ProptestConfig::with_cases` and can be scaled
//!   globally with the `PROPTEST_CASES` environment variable (useful for
//!   CI smoke jobs).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test runner configuration and error plumbing.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The effective case count: `PROPTEST_CASES` (if set and valid)
        /// overrides the configured value.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// A test-case failure raised by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic source of randomness for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
        seed: u64,
    }

    impl TestRng {
        /// Creates a generator for the named test. The seed derives from
        /// the test name (stable across runs and platforms) unless
        /// `PROPTEST_SEED` overrides it.
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name, mixed for dispersion.
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h ^ 0x5052_4F50_5445_5354 // "PROPTEST"
                });
            TestRng {
                inner: StdRng::seed_from_u64(seed),
                seed,
            }
        }

        /// The seed in use (reported on failure for reproduction).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The underlying RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Strategy returning a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.rng().gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A desired size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut map = std::collections::BTreeMap::new();
            // Like upstream, duplicate keys may land short of `n`; retry a
            // bounded number of times to approach the requested size.
            let mut attempts = 0;
            while map.len() < n && attempts < 4 * n + 8 {
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
                attempts += 1;
            }
            map
        }
    }

    /// Generates maps with keys from `key`, values from `value`, and size
    /// (approximately, after key dedup) in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.0.len());
            self.0[i].clone()
        }
    }

    /// Chooses one element of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(self.0)
        }
    }

    /// Generates `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        Weighted(p)
    }
}

pub mod prelude {
    //! Everything a `proptest!` call site needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Module-style access to strategy constructors.
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!(
                            "proptest `{}` failed at case {}/{} (seed {}): {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            rng.seed(),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report seed context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`",
            stringify!($l),
            stringify!($r)
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`",
            stringify!($l),
            stringify!($r)
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Chooses uniformly among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let x = (0u64..10).new_value(&mut rng);
            assert!(x < 10);
            let y = (1u8..=3).new_value(&mut rng);
            assert!((1..=3).contains(&y));
            let f = (0.0f64..2.5).new_value(&mut rng);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::test_runner::TestRng::for_test("sizes");
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..=255, 0..64).new_value(&mut rng);
            assert!(v.len() < 64);
            let m = prop::collection::btree_map(0u64..=255, 1u64..=255, 0..32).new_value(&mut rng);
            assert!(m.len() < 32);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x),
        ];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            if v < 20 {
                low = true;
            } else {
                assert!((100..110).contains(&v));
                high = true;
            }
        }
        assert!(low && high, "both arms should fire");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end works end to end.
        #[test]
        fn macro_front_end(x in 0u64..50, flip in any::<bool>(), s in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!(x < 50);
            prop_assert!(s >= 1 && s <= 3, "select out of range: {}", s);
            let _ = flip;
            prop_assert_eq!(x + 1, x + 1);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let sa: Vec<u64> = (0..32)
            .map(|_| (0u64..1_000_000).new_value(&mut a))
            .collect();
        let sb: Vec<u64> = (0..32)
            .map(|_| (0u64..1_000_000).new_value(&mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
