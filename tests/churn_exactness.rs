//! Exactness under churn: live root failover plus certified-complete
//! epochs, end to end.
//!
//! The contract under test: a multi-root resilient world keeps producing
//! epochs through root deaths (including the death of the first successor
//! itself), and every epoch the acting root certifies
//! [`Certificate::Complete`] is the *exact* IFI answer over the peers that
//! were alive when the epoch was issued — a `Complete` certificate never
//! lies, no matter how adversarially the kills are timed against epoch
//! boundaries.

use ifi_hierarchy::MultiHierarchy;
use ifi_overlay::churn::{ChurnEvent, ChurnSchedule, SessionModel};
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{Des, DetRng, Duration, PeerId, SimConfig, SimTime, World};
use ifi_workload::ItemId;
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::resilient::{Certificate, ResilientConfig, ResilientProtocol};
use netfilter::{NetFilterConfig, Threshold};

fn rc() -> ResilientConfig {
    ResilientConfig {
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(500),
            timeout: Duration::from_millis(1600),
            bytes: 8,
        },
        query_period: Duration::from_secs(8),
        epoch_timeout: Duration::from_secs(24),
        takeover_grace: Duration::from_secs(4),
        takeover_stagger: Duration::from_secs(3),
    }
}

fn setup(n: usize, seed: u64) -> (Topology, SystemData, NetFilterConfig) {
    let topo = Topology::random_regular(n, 5, &mut DetRng::new(seed));
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 2_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let cfg = NetFilterConfig::builder()
        .filter_size(40)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    (topo, data, cfg)
}

/// Ground-truth IFI over the peers in `alive`, at the threshold the
/// protocol resolved against the *full* workload (it holds the threshold
/// fixed across churn).
fn expected_over(
    data: &SystemData,
    cfg: &NetFilterConfig,
    alive: &dyn Fn(PeerId) -> bool,
) -> Vec<(ItemId, u64)> {
    let n = data.peer_count();
    let surviving = SystemData::from_local_sets(
        (0..n)
            .map(|i| {
                let p = PeerId::new(i);
                if alive(p) {
                    data.local_items(p).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect(),
        data.universe(),
    );
    let t = cfg.threshold.resolve(data.total_value());
    GroundTruth::compute(&surviving).frequent_items(t)
}

/// Checks every epoch any succession peer completed: `Complete` epochs
/// must be exactly the IFI over the peers alive at issue time (as decided
/// by the pinned `kills`/`revives` event lists), with a matching roster
/// count. Returns `(complete, partial)` epoch counts.
fn audit_epochs(
    w: &World<Des<ResilientProtocol>>,
    succession: &[PeerId],
    data: &SystemData,
    cfg: &NetFilterConfig,
    kills: &[(SimTime, PeerId)],
    revives: &[(SimTime, PeerId)],
) -> (usize, usize) {
    let mut complete = 0;
    let mut partial = 0;
    for &r in succession {
        for er in w.peer(r).completed_epochs() {
            let at = er.started_at;
            let alive = |p: PeerId| {
                let killed = kills
                    .iter()
                    .filter(|&&(t, v)| v == p && t <= at)
                    .map(|&(t, _)| t)
                    .max();
                let revived = revives
                    .iter()
                    .filter(|&&(t, v)| v == p && t <= at)
                    .map(|&(t, _)| t)
                    .max();
                match (killed, revived) {
                    (None, _) => true,
                    (Some(k), Some(u)) => u > k,
                    (Some(_), None) => false,
                }
            };
            match er.certificate {
                Certificate::Complete => {
                    complete += 1;
                    let n_alive = (0..data.peer_count())
                        .filter(|&i| alive(PeerId::new(i)))
                        .count();
                    assert_eq!(
                        er.roster.count as usize, n_alive,
                        "epoch {} at {at}: roster disagrees with the kill schedule",
                        er.epoch
                    );
                    assert_eq!(
                        er.answer,
                        expected_over(data, cfg, &alive),
                        "epoch {} (root {r}, started {at}) certified Complete \
                         but is not the exact IFI over the live peers",
                        er.epoch
                    );
                }
                Certificate::Partial { missing } => {
                    partial += 1;
                    assert!(
                        missing.count > 0 || missing.digest != 0,
                        "epoch {}: Partial must name a non-empty missing set",
                        er.epoch
                    );
                }
            }
        }
    }
    (complete, partial)
}

#[test]
fn killing_root_and_first_successor_mid_epoch_keeps_epochs_coming() {
    // The primary root dies just after issuing an epoch; later the rank-1
    // successor — by then the acting root — dies too. The rank-2
    // candidate must end up running the query stream, and every Complete
    // certificate along the way must be honest.
    let n = 50;
    let (topo, data, cfg) = setup(n, 211);
    let succession = [PeerId::new(0), PeerId::new(7), PeerId::new(23)];
    let mh = MultiHierarchy::with_roots(&topo, &succession);
    let mut w = ResilientProtocol::build_world_multi(
        &cfg,
        rc(),
        &topo,
        &mh,
        &data,
        SimConfig::default().with_seed(212),
    );
    w.start();
    // Epoch 3 is issued at t = 8 s; kill the root 50 ms into it.
    let kills = [
        (SimTime::from_micros(8_050_001), PeerId::new(0)),
        (SimTime::from_micros(45_000_001), PeerId::new(7)),
    ];
    for &(t, p) in &kills {
        w.schedule_kill(t, p);
    }
    w.run_until(SimTime::from_micros(150_000_000));

    let last = w.peer(PeerId::new(23));
    assert!(
        last.is_active_root(),
        "rank-2 candidate must hold the root role after both deaths"
    );
    let post = last
        .completed_epochs()
        .iter()
        .filter(|er| er.started_at > kills[1].0)
        .count();
    assert!(post >= 2, "only {post} epochs after the second death");

    let (complete, _) = audit_epochs(&w, &succession, &data, &cfg, &kills, &[]);
    assert!(complete >= 2, "only {complete} Complete epochs in the run");
    // The final regime certifies Complete over exactly the 48 survivors.
    let lc = last.last_complete().expect("steady state re-certifies");
    assert_eq!(lc.roster.count as usize, n - 2);
}

#[test]
fn complete_certificates_never_lie_under_adversarial_kill_timing() {
    // Property test: sweep kills jittered around epoch boundaries (the
    // worst moments — a kill right after issue leaves a maximally
    // half-reported epoch in flight) across many seeds; *every* Complete
    // certificate must be the exact live-set IFI. Partials must occur too,
    // or the certificate would be vacuous.
    let n = 40;
    let mut total_complete = 0;
    let mut total_partial = 0;
    for seed in 0..12u64 {
        let (topo, data, cfg) = setup(n, 300 + seed);
        let succession = [PeerId::new(0), PeerId::new(5), PeerId::new(11)];
        let mh = MultiHierarchy::with_roots(&topo, &succession);
        let mut w = ResilientProtocol::build_world_multi(
            &cfg,
            rc(),
            &topo,
            &mh,
            &data,
            SimConfig::default().with_seed(400 + seed),
        );
        w.start();
        let mut rng = DetRng::new(500 + seed);
        // Root killed within ±300 ms of an epoch boundary (8 s grid).
        let boundary = 8_000_000 * (1 + rng.below(2));
        let root_kill = SimTime::from_micros((boundary - 300_000 + rng.below(600_000)) | 1);
        // Plus one non-succession casualty near a later boundary, so some
        // epochs lose a contributor mid-flight.
        let bystander = loop {
            let p = PeerId::new(rng.below(n as u64) as usize);
            if !succession.contains(&p) {
                break p;
            }
        };
        let by_kill = SimTime::from_micros((24_000_000 - 300_000 + rng.below(600_000)) | 1);
        let kills = [(root_kill, PeerId::new(0)), (by_kill, bystander)];
        for &(t, p) in &kills {
            w.schedule_kill(t, p);
        }
        w.run_until(SimTime::from_micros(90_000_000));

        let (c, p) = audit_epochs(&w, &succession, &data, &cfg, &kills, &[]);
        assert!(
            c + p > 0,
            "seed {seed}: the run must complete at least one epoch"
        );
        total_complete += c;
        total_partial += p;
    }
    assert!(total_complete > 0, "no Complete epoch across any seed");
    assert!(
        total_partial > 0,
        "no Partial epoch across any seed — the certificate discriminates nothing"
    );
}

#[test]
fn weibull_churn_schedule_runs_end_to_end_with_failover() {
    // Churn-driven execution: a heavy-tailed Weibull session schedule is
    // installed into the world (kills *and* revivals), the succession line
    // is exempted as the stability-recruited peers the paper assumes —
    // except the primary root, which we kill explicitly on top. The run
    // must keep certifying honest epochs throughout.
    let n = 50;
    let (topo, data, cfg) = setup(n, 601);
    let succession = [PeerId::new(0), PeerId::new(13), PeerId::new(37)];
    let mh = MultiHierarchy::with_roots(&topo, &succession);
    let horizon = SimTime::from_micros(120_000_000);
    let sched = ChurnSchedule::generate(
        n,
        SessionModel::Weibull {
            scale: Duration::from_secs(60),
            shape: 0.6,
            mean_off: Duration::from_secs(30),
        },
        horizon,
        &mut DetRng::new(602),
    )
    .excluding(&succession);

    let mut w = ResilientProtocol::build_world_multi(
        &cfg,
        rc(),
        &topo,
        &mh,
        &data,
        SimConfig::default().with_seed(603),
    );
    w.start();
    sched.install_world(&mut w);
    let root_kill = (SimTime::from_micros(20_200_001), PeerId::new(0));
    w.schedule_kill(root_kill.0, root_kill.1);
    w.run_until(horizon);

    // Replay the schedule into pinned kill/revive lists for the audit.
    let mut kills = vec![root_kill];
    let mut revives = Vec::new();
    for &e in sched.events() {
        match e {
            ChurnEvent::Down(t, p) => kills.push((t, p)),
            ChurnEvent::Up(t, p) => revives.push((t, p)),
        }
    }

    let successor = w.peer(PeerId::new(13));
    assert!(
        successor.is_active_root(),
        "rank-1 successor must take over under Weibull churn"
    );
    let post = successor
        .completed_epochs()
        .iter()
        .filter(|er| er.started_at > root_kill.0)
        .count();
    assert!(post >= 1, "no post-failover epoch under Weibull churn");

    let (complete, _partial) = audit_epochs(&w, &succession, &data, &cfg, &kills, &revives);
    assert!(
        complete >= 1,
        "churn never paused long enough for a Complete epoch — soften the model"
    );
}
