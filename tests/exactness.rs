//! Property tests for netFilter's central guarantee (§I): the reported set
//! has **no false positives, no false negatives, and exact global values**
//! — for any workload, any topology, and any (g, f, φ) configuration.

use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, PeerId};
use ifi_workload::{scenarios, GroundTruth, SystemData, WorkloadParams};
use netfilter::{naive, NetFilter, NetFilterConfig, Threshold, WireSizes};
use proptest::prelude::*;

/// Builds a hierarchy of the requested shape over `peers` peers.
fn hierarchy_for(shape: u8, peers: usize, seed: u64) -> Hierarchy {
    match shape % 4 {
        0 => Hierarchy::balanced(peers, 3),
        1 => Hierarchy::balanced(peers, 1), // degenerate chain
        2 => {
            let topo = Topology::random_regular(
                peers.max(2),
                3.min(peers - 1).max(1),
                &mut DetRng::new(seed),
            );
            Hierarchy::bfs(&topo, PeerId::new(seed as usize % peers))
        }
        _ => {
            let topo = Topology::star(peers);
            Hierarchy::bfs(&topo, PeerId::new(0))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// netFilter == brute-force oracle for arbitrary configurations.
    #[test]
    fn netfilter_is_always_exact(
        peers in 2usize..40,
        items in 10u64..400,
        instances in 1u64..15,
        theta in 0.0f64..2.5,
        g in 1u32..150,
        f in 1u32..6,
        phi in prop::sample::select(vec![0.001, 0.005, 0.01, 0.05, 0.1, 0.3]),
        shape in 0u8..4,
        paper_placement in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let params = WorkloadParams { peers, items, instances_per_item: instances, theta };
        let data = if paper_placement {
            SystemData::generate_paper(&params, seed)
        } else {
            SystemData::generate(&params, seed)
        };
        let h = hierarchy_for(shape, peers, seed);
        let truth = GroundTruth::compute(&data);
        let t = truth.threshold_for_ratio(phi);

        let run = NetFilter::new(
            NetFilterConfig::builder()
                .filter_size(g)
                .filters(f)
                .threshold(Threshold::Ratio(phi))
                .hash_seed(seed ^ 0xF00D)
                .build(),
        )
        .run(&h, &data);

        prop_assert_eq!(run.threshold(), t);
        prop_assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
        let (fp, fn_, verr) = truth.verify(t, run.frequent_items());
        prop_assert_eq!((fp, fn_, verr), (0, 0, 0));
    }

    /// The naive baseline is exact too (it had better be — it ships
    /// everything), and always agrees with netFilter.
    #[test]
    fn naive_and_netfilter_agree(
        peers in 2usize..30,
        items in 10u64..300,
        theta in 0.0f64..2.0,
        phi in prop::sample::select(vec![0.005, 0.01, 0.1]),
        seed in 0u64..1_000,
    ) {
        let params = WorkloadParams { peers, items, instances_per_item: 10, theta };
        let data = SystemData::generate_paper(&params, seed);
        let h = Hierarchy::balanced(peers, 3);

        let nf = NetFilter::new(
            NetFilterConfig::builder()
                .threshold(Threshold::Ratio(phi))
                .build(),
        )
        .run(&h, &data);
        let nv = naive::run(&h, &data, Threshold::Ratio(phi), &WireSizes::default());
        prop_assert_eq!(nf.frequent_items(), nv.frequent_items());
    }

    /// Candidate counts always bound the result: every heavy item is a
    /// candidate (no false negatives can even enter verification).
    #[test]
    fn candidate_set_superset_invariant(
        peers in 2usize..25,
        items in 20u64..300,
        g in 1u32..80,
        f in 1u32..5,
        seed in 0u64..500,
    ) {
        let params = WorkloadParams { peers, items, instances_per_item: 8, theta: 1.0 };
        let data = SystemData::generate(&params, seed);
        let h = Hierarchy::balanced(peers, 2);
        let run = NetFilter::new(
            NetFilterConfig::builder().filter_size(g).filters(f).build(),
        )
        .run(&h, &data);
        let c = run.counts();
        prop_assert!(c.candidates_at_root >= c.heavy_items);
        prop_assert_eq!(c.heavy_items + c.false_positives(), c.candidates_at_root);
        prop_assert_eq!(c.heavy_items, run.frequent_items().len());
    }
}

#[test]
fn every_table_i_scenario_reduces_to_exact_ifi() {
    // One pass over each Table I application generator.
    let cases: Vec<(&str, SystemData, f64)> = vec![
        (
            "keywords",
            scenarios::keyword_queries(40, 2_000, 60, 3, 1.0, 1),
            0.01,
        ),
        (
            "pairs",
            scenarios::cooccurring_pairs(30, 200, 40, 3, 1.0, 2),
            0.01,
        ),
        (
            "documents",
            scenarios::document_replicas(40, 1_000, 8_000, 1.0, 3),
            0.01,
        ),
        ("peers", scenarios::popular_peers(40, 150, 1.0, 4), 0.05),
        (
            "contacted-pairs",
            scenarios::contacted_pairs(40, 200, 1.3, 7),
            0.01,
        ),
        (
            "flows",
            scenarios::flow_traffic(40, 3_000, 2_000, 3, 5_000, 1.2, 5),
            0.01,
        ),
        (
            "sequences",
            scenarios::byte_sequences(40, 5_000, 100, 0.7, 6),
            0.05,
        ),
    ];
    for (name, data, phi) in cases {
        let peers = data.peer_count();
        let h = Hierarchy::balanced(peers, 3);
        let truth = GroundTruth::compute(&data);
        let t = truth.threshold_for_ratio(phi);
        let run = NetFilter::new(
            NetFilterConfig::builder()
                .filter_size(60)
                .filters(3)
                .threshold(Threshold::Ratio(phi))
                .build(),
        )
        .run(&h, &data);
        assert_eq!(
            run.frequent_items(),
            &truth.frequent_items(t)[..],
            "scenario {name} not exact"
        );
    }
}

#[test]
fn degenerate_workloads() {
    // Single peer, single item, threshold exactly at the value.
    let data = SystemData::from_local_sets(vec![vec![(netfilter::ItemId(3), 7)]], 4);
    let h = Hierarchy::balanced(1, 3);
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(2)
            .filters(1)
            .threshold(Threshold::Absolute(7))
            .build(),
    )
    .run(&h, &data);
    assert_eq!(run.frequent_items(), &[(netfilter::ItemId(3), 7)]);

    // Threshold above everything: empty result, zero aggregation traffic
    // beyond the (empty) candidate maps.
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(2)
            .filters(1)
            .threshold(Threshold::Absolute(8))
            .build(),
    )
    .run(&h, &data);
    assert!(run.frequent_items().is_empty());

    // Empty system: no peers hold anything.
    let empty = SystemData::from_local_sets(vec![vec![], vec![]], 10);
    let h2 = Hierarchy::balanced(2, 3);
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .threshold(Threshold::Absolute(1))
            .build(),
    )
    .run(&h2, &empty);
    assert!(run.frequent_items().is_empty());
}
