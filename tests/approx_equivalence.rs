//! DES ≡ real transport for the sketch-merge engine at `N = 500`.
//!
//! The approximate family rides the same sans-io contract as the exact
//! protocol, so the equivalence that `transport_equivalence` proves for
//! netFilter must hold here too: the same `SketchProtocol` cores, driven
//! by the simulator and by the threaded channel runtime, produce the
//! same answer *and* the same per-class byte totals. The answer is
//! deterministic despite thread scheduling because every node merges its
//! children's summaries in canonical ascending-`PeerId` order — the
//! Space-Saving merge is exactly commutative but only ε-associative, so
//! the canonical order is what makes driver equivalence an identity
//! rather than an approximation.

use std::time::Duration as StdDuration;

use ifi_hierarchy::Hierarchy;
use ifi_sim::{MetricsReport, SimConfig};
use ifi_transport::run_channel;
use ifi_workload::{SystemData, WorkloadParams};
use netfilter::phases;
use netfilter::sketch::{SketchAnswer, SketchConfig, SketchProtocol};

const PEERS: usize = 500;
const MAX_WAIT: StdDuration = StdDuration::from_secs(60);

struct Scenario {
    cfg: SketchConfig,
    hierarchy: Hierarchy,
    data: SystemData,
}

fn scenario(seed: u64) -> Scenario {
    let data = SystemData::generate(
        &WorkloadParams {
            peers: PEERS,
            items: 2_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    Scenario {
        cfg: SketchConfig::new(32),
        hierarchy: Hierarchy::balanced(PEERS, 3),
        data,
    }
}

/// Runs the scenario under the DES and returns (answer, metrics report).
fn des_run(s: &Scenario) -> (SketchAnswer, MetricsReport) {
    let sim = SimConfig::default().with_seed(0xDE5);
    let mut w = SketchProtocol::build_world(&s.cfg, &s.hierarchy, &s.data, sim);
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    let answer = w
        .peer(s.hierarchy.root())
        .result()
        .expect("DES root must answer")
        .clone();
    (answer, w.metrics_report())
}

#[test]
fn channel_transport_matches_des_at_n500() {
    let s = scenario(42);
    let (des_answer, des_report) = des_run(&s);
    assert!(
        !des_answer.items.is_empty(),
        "scenario must report frequent items"
    );

    let cores = SketchProtocol::peers(&s.cfg, &s.hierarchy, &s.data, None);
    let outcome = run_channel(cores, 1, MAX_WAIT);

    assert_eq!(
        outcome.outputs.len(),
        1,
        "exactly the root must deliver an answer"
    );
    assert_eq!(outcome.outputs[0].0, s.hierarchy.root());
    assert_eq!(
        outcome.outputs[0].1, des_answer,
        "answers diverge across drivers"
    );
    assert_eq!(
        outcome.report.phase_bytes(phases::SKETCH),
        des_report.phase_bytes(phases::SKETCH),
        "sketch-class bytes diverge across drivers"
    );
    assert!(
        outcome.report.warnings.is_empty(),
        "transport run warned: {:?}",
        outcome.report.warnings
    );

    // The final cores are inspectable like `World::peer`.
    let root_core = &outcome.nodes[s.hierarchy.root().index()];
    assert_eq!(
        root_core.result().expect("root core holds the answer"),
        &des_answer
    );
}

#[test]
fn channel_transport_is_deterministic_across_runs() {
    // Thread scheduling permutes delivery order; canonical merge order
    // must keep the answer and the byte totals pinned anyway.
    let s = scenario(7);
    let first = run_channel(
        SketchProtocol::peers(&s.cfg, &s.hierarchy, &s.data, None),
        1,
        MAX_WAIT,
    );
    let second = run_channel(
        SketchProtocol::peers(&s.cfg, &s.hierarchy, &s.data, None),
        1,
        MAX_WAIT,
    );
    assert_eq!(first.outputs, second.outputs);
    assert_eq!(
        first.report.phase_bytes(phases::SKETCH),
        second.report.phase_bytes(phases::SKETCH)
    );
}
