//! The full paper pipeline, end to end: churn-scored stable-peer
//! recruitment → overlay attachment → hierarchy over participants →
//! sampling-based tuning → netFilter — verified against ground truth over
//! **all** peers' data, exactly as §III-A prescribes ("other peers forward
//! their local item sets to one of these peers participating in
//! netFilter").

use ifi_agg::gossip;
use ifi_hierarchy::Hierarchy;
use ifi_overlay::churn::{ChurnSchedule, SessionModel};
use ifi_overlay::{Overlay, StableSelection, Topology};
use ifi_sim::{DetRng, Duration, PeerId, SimTime};
use ifi_workload::{GroundTruth, ItemId, SystemData, WorkloadParams};
use netfilter::recruitment::RecruitedSystem;
use netfilter::{tuning, NetFilter, Threshold, WireSizes};

#[test]
fn recruited_pipeline_answers_over_all_peers_data() {
    let n = 150;
    let seed = 71;
    let mut rng = DetRng::new(seed);
    let topo = Topology::random_regular(n, 4, &mut rng);

    // Stability scoring from a churn history; recruit the top 40%.
    let sched = ChurnSchedule::generate(
        n,
        SessionModel::ParetoOn {
            scale: Duration::from_secs(60),
            alpha: 1.5,
            mean_off: Duration::from_secs(120),
        },
        SimTime::from_micros(3_600_000_000),
        &mut rng,
    );
    let overlay = Overlay::recruit(topo, &sched, StableSelection::TopFraction(0.4), &mut rng);
    overlay.check_invariants();
    assert_eq!(overlay.participants().len(), 60);

    // The workload lives on ALL peers; RecruitedSystem folds the
    // non-participants' data into their attachment targets and builds the
    // hierarchy over the (connected) participant subgraph.
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 5_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let sys = RecruitedSystem::assemble(overlay, &data, &WireSizes::default(), &mut rng);
    sys.hierarchy.check_invariants(None);
    assert_eq!(sys.folded.total_value(), data.total_value(), "no mass lost");
    assert!(sys.avg_report_bytes() > 0.0);

    // Tune (g, f) by sampling, then run.
    let tuned = tuning::tune(
        &sys.hierarchy,
        &sys.folded,
        Threshold::Ratio(0.01),
        &ifi_agg::sampling::SamplingConfig {
            branches: 12,
            items_per_peer: 150,
        },
        &WireSizes::default(),
        &mut rng,
    );
    let run = NetFilter::new(tuned.to_config(WireSizes::default(), seed))
        .run(&sys.hierarchy, &sys.folded);

    // The answer covers every peer's data exactly.
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.01);
    assert_eq!(run.threshold(), t);
    assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
}

#[test]
fn preliminary_aggregates_v_and_n_by_both_methods() {
    // §IV: v and N come from "simple aggregate computation"; the paper's
    // future work is gossip. Compare both on the same system.
    let n = 200;
    let mut rng = DetRng::new(81);
    let topo = Topology::random_regular(n, 5, &mut rng);
    let h = Hierarchy::bfs(&topo, PeerId::new(0));
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 3_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        82,
    );
    let v_true = data.total_value() as f64;

    // Exact hierarchical scalar aggregation.
    let out = ifi_agg::hierarchical::aggregate(&h, &WireSizes::default(), |p| {
        ifi_agg::ScalarSum(data.local_items(p).iter().map(|&(_, v)| v).sum())
    });
    assert_eq!(out.root_value.0 as f64, v_true);

    // Gossip approximation converges close to the same value.
    let values: Vec<f64> = (0..n)
        .map(|i| {
            data.local_items(PeerId::new(i))
                .iter()
                .map(|&(_, v)| v as f64)
                .sum()
        })
        .collect();
    let rounds = gossip::recommended_rounds(n, 1e-4);
    let g = gossip::push_sum(&topo, &values, rounds, &WireSizes::default(), &mut rng);
    assert!(
        g.max_relative_error(v_true) < 0.05,
        "gossip error {}",
        g.max_relative_error(v_true)
    );
    // …but at a far higher byte cost than the exact convergecast.
    assert!(g.avg_bytes_per_peer() > 10.0 * out.avg_bytes_per_peer());
}

#[test]
fn threshold_monotonicity_over_one_system() {
    // Same data, falling thresholds: result sets are nested and costs grow.
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: 100,
            items: 10_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        91,
    );
    let h = Hierarchy::balanced(100, 3);
    let mut previous: Option<Vec<(ItemId, u64)>> = None;
    for &phi in &[0.1, 0.05, 0.01, 0.005] {
        let run = NetFilter::new(
            netfilter::NetFilterConfig::builder()
                .filter_size(100)
                .filters(3)
                .threshold(Threshold::Ratio(phi))
                .build(),
        )
        .run(&h, &data);
        if let Some(prev) = &previous {
            // Every previously frequent item stays frequent at the lower
            // threshold.
            for item in prev {
                assert!(
                    run.frequent_items().contains(item),
                    "item {item:?} vanished when threshold fell to {phi}"
                );
            }
            assert!(run.frequent_items().len() >= prev.len());
        }
        previous = Some(run.frequent_items().to_vec());
    }
}
