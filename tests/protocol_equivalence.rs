//! The message-level protocol and the instant engine are the same
//! algorithm: identical answers and identical per-phase byte totals, under
//! any latency model — plus the algebraic properties (commutative,
//! associative merges) that make out-of-order convergecasts safe.

use ifi_agg::{Aggregate, MapSum, VecSum};
use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, Duration, LatencyModel, MsgClass, PeerId, SimConfig};
use ifi_workload::{ItemId, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::{NetFilter, NetFilterConfig, Threshold};
use proptest::prelude::*;

fn latency_for(kind: u8) -> LatencyModel {
    match kind % 3 {
        0 => LatencyModel::Constant(Duration::from_millis(50)),
        1 => LatencyModel::Uniform {
            lo: Duration::from_millis(1),
            hi: Duration::from_millis(400),
        },
        _ => LatencyModel::Exponential {
            mean: Duration::from_millis(80),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DES protocol ≡ instant engine, bytes included.
    #[test]
    fn protocol_equals_instant_engine(
        peers in 3usize..50,
        items in 20u64..400,
        g in 2u32..100,
        f in 1u32..5,
        latency_kind in 0u8..3,
        seed in 0u64..500,
    ) {
        let params = WorkloadParams { peers, items, instances_per_item: 10, theta: 1.0 };
        let data = SystemData::generate(&params, seed);
        let degree = 3.min(peers - 1).max(1);
        let topo = Topology::random_regular(peers, degree, &mut DetRng::new(seed));
        let h = Hierarchy::bfs(&topo, PeerId::new(seed as usize % peers));
        let cfg = NetFilterConfig::builder()
            .filter_size(g)
            .filters(f)
            .threshold(Threshold::Ratio(0.01))
            .build();

        let instant = NetFilter::new(cfg.clone()).run(&h, &data);

        let sim = SimConfig::default()
            .with_seed(seed ^ 0xD15C)
            .with_latency(latency_for(latency_kind));
        let mut w = NetFilterProtocol::build_world(&cfg, &h, &data, sim);
        w.start();
        w.run_to_quiescence();

        let root = h.root();
        prop_assert_eq!(
            w.peer(root).result().expect("root must finish"),
            instant.frequent_items()
        );
        let m = w.metrics();
        prop_assert_eq!(
            m.class_bytes(MsgClass::FILTERING),
            instant.cost().filtering.iter().sum::<u64>()
        );
        prop_assert_eq!(
            m.class_bytes(MsgClass::DISSEMINATION),
            instant.cost().dissemination.iter().sum::<u64>()
        );
        prop_assert_eq!(
            m.class_bytes(MsgClass::AGGREGATION),
            instant.cost().aggregation.iter().sum::<u64>()
        );
    }

    /// MapSum merge is commutative and associative — the property that
    /// makes child-report order irrelevant.
    #[test]
    fn map_sum_merge_is_commutative_associative(
        a in prop::collection::vec((0u64..50, 1u64..100), 0..20),
        b in prop::collection::vec((0u64..50, 1u64..100), 0..20),
        c in prop::collection::vec((0u64..50, 1u64..100), 0..20),
    ) {
        let mk = |v: &[(u64, u64)]| {
            MapSum::from_pairs(v.iter().map(|&(k, val)| (ItemId(k), val)))
        };
        let (ma, mb, mc) = (mk(&a), mk(&b), mk(&c));

        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&mc);
        let mut bc = mb.clone();
        bc.merge(&mc);
        let mut a_bc = ma.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// VecSum merge is commutative and associative.
    #[test]
    fn vec_sum_merge_is_commutative_associative(
        dims in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let mut rng = DetRng::new(seed);
        let mk = |rng: &mut DetRng| VecSum((0..dims).map(|_| rng.below(1000)).collect());
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// The DES answer is independent of the latency model (same seed data,
    /// different network conditions).
    #[test]
    fn answer_is_latency_invariant(
        peers in 3usize..30,
        seed in 0u64..200,
    ) {
        let params = WorkloadParams { peers, items: 100, instances_per_item: 10, theta: 1.0 };
        let data = SystemData::generate(&params, seed);
        let h = Hierarchy::balanced(peers, 2);
        let cfg = NetFilterConfig::builder().filter_size(20).filters(2).build();

        let mut results = Vec::new();
        for kind in 0u8..3 {
            let sim = SimConfig::default()
                .with_seed(seed)
                .with_latency(latency_for(kind));
            let mut w = NetFilterProtocol::build_world(&cfg, &h, &data, sim);
            w.start();
            w.run_to_quiescence();
            results.push(w.peer(h.root()).result().expect("finished").to_vec());
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }
}

#[test]
fn convergecast_scalar_matches_over_every_topology_shape() {
    // ScalarSum aggregation agreement between instant and DES engines on
    // deliberately awkward shapes.
    use ifi_agg::{hierarchical, ConvergecastProtocol, ScalarSum, WireSizes};
    use ifi_sim::World;

    let shapes: Vec<Hierarchy> = vec![
        Hierarchy::balanced(1, 3),
        Hierarchy::balanced(2, 1),
        Hierarchy::balanced(50, 1),  // chain
        Hierarchy::balanced(50, 49), // star
        Hierarchy::bfs(&Topology::ring(20), PeerId::new(5)),
    ];
    for h in shapes {
        let n = h.universe();
        let instant = hierarchical::aggregate(&h, &WireSizes::default(), |p| {
            ScalarSum(p.index() as u64 + 1)
        });
        let peers: Vec<ConvergecastProtocol<ScalarSum>> = (0..n)
            .map(|i| {
                ConvergecastProtocol::new(
                    &h,
                    PeerId::new(i),
                    WireSizes::default(),
                    ScalarSum(i as u64 + 1),
                )
            })
            .collect();
        let mut w = World::new(SimConfig::default().with_seed(9), peers);
        w.start();
        w.run_to_quiescence();
        assert_eq!(
            w.peer(h.root()).result(),
            Some(&instant.root_value),
            "disagreement on {n}-peer shape"
        );
    }
}
