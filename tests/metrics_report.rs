//! Property tests for the `ifi-metrics` observability layer: a
//! [`MetricsReport`] is a *view* of the same bytes the engine already
//! accounts in its `CostBreakdown`, so the two must agree byte-for-byte —
//! per phase, per peer, on any workload — and observing a run must never
//! change its answer.

use ifi_hierarchy::Hierarchy;
use ifi_sim::{Ctx, EventSink, MsgClass, PeerId, Protocol, SimConfig, World};
use ifi_workload::{SystemData, WorkloadParams};
use netfilter::{NetFilter, NetFilterConfig, Threshold};
use proptest::prelude::*;

fn build(g: u32, f: u32, phi: f64, seed: u64) -> NetFilter {
    NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(g)
            .filters(f)
            .threshold(Threshold::Ratio(phi))
            .hash_seed(seed ^ 0xBEEF)
            .build(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The report's per-phase per-peer byte totals are identical to the
    /// engine's `CostBreakdown` on arbitrary workloads and configurations,
    /// and instrumentation does not perturb the answer.
    #[test]
    fn report_phases_match_cost_breakdown_exactly(
        peers in 2usize..60,
        items in 10u64..500,
        instances in 1u64..12,
        theta in 0.0f64..2.0,
        g in 1u32..120,
        f in 1u32..5,
        phi in prop::sample::select(vec![0.005, 0.01, 0.05, 0.2]),
        seed in 0u64..1_000,
    ) {
        let data = SystemData::generate_paper(
            &WorkloadParams { peers, items, instances_per_item: instances, theta },
            seed,
        );
        let h = Hierarchy::balanced(peers, 3);
        let engine = build(g, f, phi, seed);
        let plain = engine.run(&h, &data);
        let (run, report) = engine.run_instrumented(&h, &data);

        // Observation is free: identical answer and identical costs.
        prop_assert_eq!(run.frequent_items(), plain.frequent_items());
        prop_assert_eq!(run.cost(), plain.cost());

        // Byte-identity per phase, per peer (reconcile re-checks what
        // run_instrumented already asserted; here we also check it in the
        // public-API direction).
        let cost = run.cost();
        prop_assert!(cost.reconcile(&report).is_ok());
        for (label, expect) in [
            ("filtering", &cost.filtering),
            ("dissemination", &cost.dissemination),
            ("aggregation", &cost.aggregation),
        ] {
            let got = report.phase_peer_bytes(label).unwrap_or_default();
            prop_assert_eq!(&got, expect, "phase {} per-peer bytes", label);
            prop_assert_eq!(
                report.phase_bytes(label),
                expect.iter().sum::<u64>(),
                "phase {} total",
                label
            );
        }
        prop_assert_eq!(report.total_bytes(), cost.total_bytes());
        prop_assert_eq!(report.peer_count, peers);
    }

    /// A disabled sink records nothing, whatever is thrown at it.
    #[test]
    fn disabled_sink_records_zero_events(
        sends in prop::collection::vec((0usize..32, 0u64..10_000), 0..64),
    ) {
        let mut sink = EventSink::disabled();
        sink.enter("phase-a");
        for &(peer, bytes) in &sends {
            sink.record(PeerId::new(peer), MsgClass::DATA, bytes);
        }
        sink.exit();
        prop_assert!(!sink.is_enabled());
        prop_assert_eq!(sink.events_recorded(), 0);
        let report = sink.report();
        prop_assert_eq!(report.total_bytes(), 0);
        prop_assert_eq!(report.total_messages(), 0);
        prop_assert!(report.phase("phase-a").is_none());
    }
}

/// Two-peer probe whose handlers tag their traffic with distinct phase
/// marks, so a stale mark from before a reset is visible in the report.
#[derive(Debug, Default)]
struct MarkedProbe;

impl Protocol for MarkedProbe {
    type Msg = u8;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if ctx.self_id().index() == 0 {
            ctx.mark_phase("warmup");
            ctx.send(PeerId::new(1), 1, 11, MsgClass::CONTROL);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, _from: PeerId, msg: u8) {
        if msg == 2 {
            ctx.mark_phase("measured");
            ctx.send(PeerId::new(0), 3, 7, MsgClass::DATA);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _t: ()) {}
}

/// Regression: `World::reset_metrics` used to reset byte counters but not
/// the sink's span stack and handler phase marks, so back-to-back
/// instrumented runs leaked the warm-up run's phase boundaries into the
/// next `MetricsReport`. After a reset the report must reflect only
/// post-reset activity under post-reset marks.
#[test]
fn reset_metrics_clears_phase_marks_between_instrumented_runs() {
    let mut w = World::new(
        SimConfig::default().with_seed(5),
        vec![MarkedProbe, MarkedProbe],
    );
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    assert_eq!(w.metrics_report().phase_bytes("warmup"), 11);

    w.reset_metrics();
    assert!(w.sink().is_enabled(), "reset must not disable the sink");
    assert!(w.metrics_report().phases.is_empty());
    assert_eq!(w.metrics().total_bytes(), 0);

    // Second instrumented run over the same world: its traffic lands
    // under its own mark, and nothing resurfaces under the stale one.
    w.inject(PeerId::new(0), PeerId::new(1), 2, 5, MsgClass::CONTROL);
    w.run_to_quiescence();
    let report = w.metrics_report();
    assert_eq!(report.phase_bytes("warmup"), 0, "stale phase mark leaked");
    assert_eq!(report.phase_bytes("measured"), 7);
}
