//! Property tests for the wire codec: encode/decode round-trips for
//! arbitrary protocol messages, and the payload-length ≡ engine-charge
//! identity that grounds the paper's cost accounting.

use ifi_agg::{Aggregate, MapSum, VecSum, WireSizes};
use netfilter::codec::{Codec, CodecError};
use netfilter::protocol::NfMsg;
use netfilter::ItemId;
use proptest::prelude::*;

fn arb_sizes() -> impl Strategy<Value = WireSizes> {
    (1u64..=8, 1u64..=8, 1u64..=8).prop_map(|(sa, sg, si)| WireSizes { sa, sg, si })
}

/// Values that fit the narrowest field width we generate.
fn arb_group_vec() -> impl Strategy<Value = VecSum> {
    prop::collection::vec(0u64..=255, 0..64).prop_map(VecSum)
}

fn arb_heavy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..=255, 0..16), 0..6)
}

fn arb_candidates() -> impl Strategy<Value = MapSum> {
    // Distinct keys: duplicate keys would sum past the 1-byte field bound.
    prop::collection::btree_map(0u64..=255, 1u64..=255, 0..32)
        .prop_map(|pairs| MapSum::from_pairs(pairs.into_iter().map(|(k, v)| (ItemId(k), v))))
}

fn arb_msg() -> impl Strategy<Value = NfMsg> {
    prop_oneof![
        arb_group_vec().prop_map(NfMsg::GroupAgg),
        arb_heavy().prop_map(NfMsg::Heavy),
        arb_candidates().prop_map(NfMsg::CandidateAgg),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(m)) reproduces m, at any field widths.
    #[test]
    fn round_trip(msg in arb_msg(), sizes in arb_sizes()) {
        let codec = Codec::new(sizes);
        let encoded = codec.encode(&msg).expect("small values fit all widths");
        let decoded = codec.decode(&encoded).expect("decodes");
        // Compare via re-encoding (NfMsg intentionally carries no PartialEq).
        prop_assert_eq!(codec.encode(&decoded).unwrap(), encoded.clone());
        // Length identity.
        prop_assert_eq!(
            encoded.len() as u64,
            codec.frame_len(&msg) + codec.payload_len(&msg)
        );
    }

    /// The codec's payload length equals what the aggregation engines
    /// charge for the same value.
    #[test]
    fn payload_equals_engine_charge(
        v in arb_group_vec(),
        m in arb_candidates(),
        sizes in arb_sizes(),
    ) {
        let codec = Codec::new(sizes);
        prop_assert_eq!(
            codec.payload_len(&NfMsg::GroupAgg(v.clone())),
            v.encoded_bytes(&sizes)
        );
        prop_assert_eq!(
            codec.payload_len(&NfMsg::CandidateAgg(m.clone())),
            m.encoded_bytes(&sizes)
        );
    }

    /// Any strict prefix of a nonempty encoding fails to decode (no silent
    /// truncation).
    #[test]
    fn prefixes_never_decode(msg in arb_msg()) {
        let codec = Codec::new(WireSizes::default());
        let encoded = codec.encode(&msg).unwrap();
        for cut in 0..encoded.len() {
            prop_assert!(
                codec.decode(&encoded[..cut]).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// Appending garbage is always detected.
    #[test]
    fn trailing_bytes_rejected(msg in arb_msg(), junk in 1usize..8) {
        let codec = Codec::new(WireSizes::default());
        let mut bytes = codec.encode(&msg).unwrap().to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, junk));
        prop_assert!(matches!(
            codec.decode(&bytes),
            Err(CodecError::TrailingBytes(_))
        ));
    }

    /// Values exceeding the field width are rejected at encode time.
    #[test]
    fn overflow_rejected(extra in 1u64..1_000_000) {
        let sizes = WireSizes { sa: 2, sg: 4, si: 4 };
        let codec = Codec::new(sizes);
        let too_big = (1u64 << 16) - 1 + extra;
        let msg = NfMsg::GroupAgg(VecSum(vec![too_big]));
        let overflowed = matches!(codec.encode(&msg), Err(CodecError::ValueOverflow { .. }));
        prop_assert!(overflowed);
    }
}

/// Pinned proptest counterexample: a candidate value of 256 must overflow
/// a 1-byte aggregate field (256 == 1 << 8 is the first value that does
/// not fit, an off-by-one the `>=` bound in `put_uint` has to get right).
/// Kept as a deterministic test so the case survives shrink-seed loss.
#[test]
fn candidate_overflow_at_one_byte_width_regression() {
    let codec = Codec::new(WireSizes {
        sa: 1,
        sg: 1,
        si: 1,
    });
    let msg = NfMsg::CandidateAgg(MapSum::from_pairs([(ItemId(62), 256)]));
    assert_eq!(
        codec.encode(&msg),
        Err(CodecError::ValueOverflow {
            value: 256,
            width: 1
        })
    );
    // The same message fits as soon as the width can hold 256.
    let wide = Codec::new(WireSizes {
        sa: 2,
        sg: 1,
        si: 1,
    });
    let msg = NfMsg::CandidateAgg(MapSum::from_pairs([(ItemId(62), 256)]));
    let encoded = wide.encode(&msg).expect("2-byte field holds 256");
    wide.decode(&encoded).expect("round-trips");
}
