//! DES ≡ real transport: the same sans-io cores, driven by the simulator
//! and by the threaded runtime, must produce the same answer *and* the
//! same per-phase byte totals.
//!
//! This is the payoff of the sans-io split: `NetFilterProtocol` contains
//! no I/O, so a DES run and a channel/TCP run differ only in who applies
//! the effects. The answer is deterministic because convergecast merges
//! are commutative and associative (see `protocol_equivalence`), and the
//! byte totals are deterministic because every peer charges the same
//! paper-priced payload bytes regardless of delivery order or wall-clock
//! interleaving. Phase totals are compared, not event traces — thread
//! scheduling legitimately permutes event order.

use std::time::Duration as StdDuration;

use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, MetricsReport, PeerId, SimConfig};
use ifi_transport::{run_channel, run_tcp};
use ifi_workload::{ItemId, SystemData, WorkloadParams};
use netfilter::protocol::{NetFilterProtocol, NfDelivery};
use netfilter::wire::NfWire;
use netfilter::{NetFilterConfig, Threshold};

/// The paper's three metered phases.
const PAPER_PHASES: [&str; 3] = ["filtering", "dissemination", "aggregation"];

const MAX_WAIT: StdDuration = StdDuration::from_secs(60);

struct Scenario {
    cfg: NetFilterConfig,
    hierarchy: Hierarchy,
    data: SystemData,
}

fn scenario(peers: usize, items: u64, seed: u64) -> Scenario {
    let params = WorkloadParams {
        peers,
        items,
        instances_per_item: 10,
        theta: 1.0,
    };
    let data = SystemData::generate(&params, seed);
    let degree = 3.min(peers - 1).max(1);
    let topo = Topology::random_regular(peers, degree, &mut DetRng::new(seed));
    let hierarchy = Hierarchy::bfs(&topo, PeerId::new(seed as usize % peers));
    let cfg = NetFilterConfig::builder()
        .filter_size(24)
        .filters(2)
        .threshold(Threshold::Ratio(0.01))
        .build();
    Scenario {
        cfg,
        hierarchy,
        data,
    }
}

/// Runs the scenario under the DES and returns (answer, metrics report).
fn des_run(s: &Scenario) -> (Vec<(ItemId, u64)>, MetricsReport) {
    let sim = SimConfig::default().with_seed(0xDE5);
    let mut w = NetFilterProtocol::build_world(&s.cfg, &s.hierarchy, &s.data, sim);
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    let answer = w
        .peer(s.hierarchy.root())
        .result()
        .expect("DES root must finish")
        .to_vec();
    (answer, w.metrics_report())
}

/// The same peer population `build_world` constructs, as bare cores for a
/// transport driver.
fn transport_peers(s: &Scenario) -> Vec<NetFilterProtocol> {
    let threshold = s.cfg.threshold.resolve(s.data.total_value());
    (0..s.data.peer_count())
        .map(|i| {
            let p = PeerId::new(i);
            NetFilterProtocol::new(
                &s.cfg,
                &s.hierarchy,
                p,
                s.data.local_items(p).to_vec(),
                threshold,
            )
        })
        .collect()
}

/// Asserts a transport run reconciles with the DES: same root, same
/// answer, same per-phase byte totals.
fn assert_reconciles(
    s: &Scenario,
    des_answer: &[(ItemId, u64)],
    des_report: &MetricsReport,
    outputs: &[(PeerId, NfDelivery)],
    report: &MetricsReport,
) {
    assert_eq!(outputs.len(), 1, "exactly the root must deliver a result");
    assert_eq!(outputs[0].0, s.hierarchy.root());
    assert_eq!(
        outputs[0].1.answer, des_answer,
        "answers diverge across drivers"
    );
    for phase in PAPER_PHASES {
        assert_eq!(
            report.phase_bytes(phase),
            des_report.phase_bytes(phase),
            "phase `{phase}` bytes diverge across drivers"
        );
    }
    assert!(
        report.warnings.is_empty(),
        "transport run warned: {:?}",
        report.warnings
    );
}

#[test]
fn channel_transport_matches_des() {
    let s = scenario(23, 150, 42);
    let (des_answer, des_report) = des_run(&s);
    assert!(!des_answer.is_empty(), "scenario must have frequent items");

    let outcome = run_channel(transport_peers(&s), 1, MAX_WAIT);
    assert_reconciles(
        &s,
        &des_answer,
        &des_report,
        &outcome.outputs,
        &outcome.report,
    );

    // The final cores are inspectable like `World::peer`.
    let root_core = &outcome.nodes[s.hierarchy.root().index()];
    assert_eq!(
        root_core.result().expect("root core holds result"),
        des_answer
    );
}

#[test]
fn tcp_transport_matches_des() {
    let s = scenario(12, 80, 7);
    let (des_answer, des_report) = des_run(&s);
    assert!(!des_answer.is_empty(), "scenario must have frequent items");

    let outcome = run_tcp(transport_peers(&s), NfWire::new(s.cfg.sizes), 1, MAX_WAIT)
        .expect("tcp fabric setup failed");
    assert_reconciles(
        &s,
        &des_answer,
        &des_report,
        &outcome.outputs,
        &outcome.report,
    );
}

#[test]
fn channel_transport_is_deterministic_across_runs() {
    // Thread scheduling may permute event order, but answers and phase
    // totals must not move run to run.
    let s = scenario(17, 120, 3);
    let first = run_channel(transport_peers(&s), 1, MAX_WAIT);
    let second = run_channel(transport_peers(&s), 1, MAX_WAIT);
    assert_eq!(first.outputs, second.outputs);
    for phase in PAPER_PHASES {
        assert_eq!(
            first.report.phase_bytes(phase),
            second.report.phase_bytes(phase)
        );
    }
}
