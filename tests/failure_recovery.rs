//! Failure handling across the stack: hierarchy repair under churn
//! schedules, multi-hierarchy failover when the root dies, and re-running
//! netFilter on a repaired tree.

use ifi_hierarchy::{Hierarchy, MaintainProtocol, MultiHierarchy};
use ifi_overlay::churn::{ChurnEvent, ChurnSchedule, SessionModel};
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{sansio_world, Des, DetRng, Duration, PeerId, SimConfig, SimTime, World};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::resilient::{ResilientConfig, ResilientProtocol};
use netfilter::{NetFilter, NetFilterConfig, Threshold};

fn maintain_world(topo: &Topology, h: &Hierarchy, seed: u64) -> World<Des<MaintainProtocol>> {
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(500),
        timeout: Duration::from_millis(1600),
        bytes: 8,
    };
    let peers = topo
        .peers()
        .map(|p| MaintainProtocol::new(h, p, topo.neighbors(p).to_vec(), hb))
        .collect();
    sansio_world(SimConfig::default().with_seed(seed), peers)
}

#[test]
fn repair_converges_under_a_burst_of_failures() {
    let n = 120;
    let topo = Topology::random_regular(n, 5, &mut DetRng::new(31));
    let root = PeerId::new(0);
    let h = Hierarchy::bfs(&topo, root);
    let mut w = maintain_world(&topo, &h, 32);
    w.start();

    // Kill 10 random non-root peers at staggered times.
    let mut rng = DetRng::new(33);
    let mut victims = Vec::new();
    while victims.len() < 10 {
        let v = PeerId::new(rng.below(n as u64) as usize);
        if v != root && !victims.contains(&v) {
            victims.push(v);
        }
    }
    for (k, &v) in victims.iter().enumerate() {
        w.schedule_kill(SimTime::from_micros(2_000_000 + 400_000 * k as u64), v);
    }
    w.run_until(SimTime::from_micros(90_000_000));

    let snap = MaintainProtocol::snapshot(
        root,
        (0..n).map(|i| (w.peer(PeerId::new(i)), w.is_up(PeerId::new(i)))),
    );
    snap.check_invariants(None);
    // Degree-5 random graphs stay connected after 10 removals whp; every
    // surviving peer must have re-attached.
    assert_eq!(snap.member_count(), n - victims.len());
}

#[test]
fn repair_follows_a_generated_churn_schedule() {
    // Use the overlay churn model end-to-end: generate a schedule, install
    // the *down* events (revived peers would need a re-join protocol run;
    // netFilter's recruitment avoids churn-prone peers instead).
    let n = 80;
    let topo = Topology::random_regular(n, 5, &mut DetRng::new(41));
    let root = PeerId::new(0);
    let h = Hierarchy::bfs(&topo, root);
    let horizon = SimTime::from_micros(60_000_000);
    let sched = ChurnSchedule::generate(
        n,
        SessionModel::Exponential {
            mean_on: Duration::from_secs(400),
            mean_off: Duration::from_secs(400),
        },
        horizon,
        &mut DetRng::new(42),
    );

    let mut w = maintain_world(&topo, &h, 43);
    w.start();
    let mut downed = std::collections::BTreeSet::new();
    for &e in sched.events() {
        if let ChurnEvent::Down(t, p) = e {
            if p != root && downed.insert(p) {
                w.schedule_kill(t, p);
            }
        }
    }
    // Let repairs settle well past the last failure.
    w.run_until(SimTime::from_micros(200_000_000));

    let snap = MaintainProtocol::snapshot(
        root,
        (0..n).map(|i| (w.peer(PeerId::new(i)), w.is_up(PeerId::new(i)))),
    );
    snap.check_invariants(None);
    let alive = (0..n).filter(|&i| w.is_up(PeerId::new(i))).count();
    // Every alive peer that can reach the root through alive peers must be
    // a member; with degree 5 and moderate churn the graph stays connected.
    assert_eq!(snap.member_count(), alive);
}

#[test]
fn multi_hierarchy_masks_root_failure() {
    let n = 60;
    let topo = Topology::random_regular(n, 4, &mut DetRng::new(51));
    let mh = MultiHierarchy::build(&topo, 3, &mut DetRng::new(52));
    let primary_root = mh.primary().root();

    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 2_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        53,
    );
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.01);

    // Primary root dies: fail over to the next tree and answer there.
    let fallback = mh
        .active(|p| p != primary_root)
        .expect("three trees with distinct roots");
    assert_ne!(fallback.root(), primary_root);
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(40)
            .filters(3)
            .threshold(Threshold::Ratio(0.01))
            .build(),
    )
    .run(fallback, &data);
    assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
}

fn resilient_rc() -> ResilientConfig {
    ResilientConfig {
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(500),
            timeout: Duration::from_millis(1600),
            bytes: 8,
        },
        query_period: Duration::from_secs(8),
        epoch_timeout: Duration::from_secs(24),
        takeover_grace: Duration::from_secs(4),
        takeover_stagger: Duration::from_secs(3),
    }
}

fn resilient_setup(n: usize, seed: u64) -> (Topology, SystemData, NetFilterConfig) {
    let topo = Topology::random_regular(n, 5, &mut DetRng::new(seed));
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 2_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let cfg = NetFilterConfig::builder()
        .filter_size(40)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    (topo, data, cfg)
}

#[test]
fn single_hierarchy_root_kill_stalls_epochs_forever() {
    // The pinned single-point-of-failure regression: without a succession
    // line, killing the root stops the query stream permanently — no peer
    // may promote itself, so no epoch ever completes again. This is the
    // exact vulnerability §III-A.1 calls out and that
    // `live_failover_keeps_epochs_coming_past_a_dead_root` (below) fixes.
    let n = 60;
    let (topo, data, cfg) = resilient_setup(n, 71);
    let h = Hierarchy::bfs(&topo, PeerId::new(0));
    let mut w = ResilientProtocol::build_world(
        &cfg,
        resilient_rc(),
        &topo,
        &h,
        &data,
        SimConfig::default().with_seed(72),
    );
    w.start();
    let kill_at = SimTime::from_micros(12_300_000);
    w.schedule_kill(kill_at, PeerId::new(0));
    w.run_until(SimTime::from_micros(90_000_000));

    let root = w.peer(PeerId::new(0));
    let done = root.completed_epochs();
    assert!(!done.is_empty(), "pre-kill epochs must have completed");
    assert!(
        done.iter().all(|er| er.started_at < kill_at),
        "no epoch may start after the lone root dies"
    );
    // Nobody else stepped up: with one hierarchy there is no succession.
    assert!((1..n).all(|i| !w.peer(PeerId::new(i)).is_active_root()));
    assert!(
        (1..n).all(|i| w.peer(PeerId::new(i)).completed_epochs().is_empty()),
        "no other peer may complete epochs"
    );
}

#[test]
fn live_failover_keeps_epochs_coming_past_a_dead_root() {
    // The flipped assertion: the same kill against a 3-deep succession
    // line keeps the epoch stream alive — the rank-1 successor detects the
    // death (continuous detachment past its staggered grace), promotes
    // itself, and certifies Complete epochs over the survivors.
    let n = 60;
    let (topo, data, cfg) = resilient_setup(n, 71);
    let mh = MultiHierarchy::with_roots(&topo, &[PeerId::new(0), PeerId::new(9), PeerId::new(31)]);
    let mut w = ResilientProtocol::build_world_multi(
        &cfg,
        resilient_rc(),
        &topo,
        &mh,
        &data,
        SimConfig::default().with_seed(72),
    );
    w.start();
    let kill_at = SimTime::from_micros(12_300_000);
    w.schedule_kill(kill_at, PeerId::new(0));
    w.run_until(SimTime::from_micros(90_000_000));

    let successor = w.peer(PeerId::new(9));
    assert!(successor.is_active_root(), "rank-1 successor takes over");
    let post = successor
        .completed_epochs()
        .iter()
        .filter(|er| er.started_at > kill_at)
        .count();
    assert!(post >= 2, "only {post} post-failover epochs completed");

    // Steady state certifies Complete and is exact over the survivors.
    let surviving = SystemData::from_local_sets(
        (0..n)
            .map(|i| {
                if i == 0 {
                    Vec::new()
                } else {
                    data.local_items(PeerId::new(i)).to_vec()
                }
            })
            .collect(),
        data.universe(),
    );
    let truth = GroundTruth::compute(&surviving);
    let t = cfg.threshold.resolve(data.total_value());
    let lc = successor
        .last_complete()
        .expect("a post-failover epoch certifies Complete");
    assert_eq!(lc.roster.count as usize, n - 1);
    assert_eq!(lc.answer, truth.frequent_items(t));
}

#[test]
fn query_on_repaired_tree_is_exact_for_surviving_data() {
    let n = 90;
    let topo = Topology::random_regular(n, 4, &mut DetRng::new(61));
    let root = PeerId::new(0);
    let h = Hierarchy::bfs(&topo, root);
    let mut w = maintain_world(&topo, &h, 62);
    w.start();

    let victim = *h
        .internal_nodes()
        .iter()
        .max_by_key(|&&p| h.subtree_size(p))
        .expect("internal nodes exist");
    w.schedule_kill(SimTime::from_micros(2_000_000), victim);
    w.run_until(SimTime::from_micros(60_000_000));
    let repaired = MaintainProtocol::snapshot(
        root,
        (0..n).map(|i| (w.peer(PeerId::new(i)), w.is_up(PeerId::new(i)))),
    );
    assert_eq!(repaired.member_count(), n - 1);

    let full = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 3_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        63,
    );
    let surviving = SystemData::from_local_sets(
        (0..n)
            .map(|i| {
                if PeerId::new(i) == victim {
                    Vec::new()
                } else {
                    full.local_items(PeerId::new(i)).to_vec()
                }
            })
            .collect(),
        3_000,
    );
    let truth = GroundTruth::compute(&surviving);
    let t = truth.threshold_for_ratio(0.01);
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(60)
            .filters(3)
            .threshold(Threshold::Ratio(0.01))
            .build(),
    )
    .run(&repaired, &surviving);
    assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
}
