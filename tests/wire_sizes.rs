//! The wire-size model end to end: changing `s_a`/`s_g`/`s_i` must scale
//! every cost component consistently across the instant engine, the DES
//! protocol, and the codec — and never change the answer.

use ifi_hierarchy::Hierarchy;
use ifi_sim::{MsgClass, PeerId, SimConfig};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::{NetFilter, NetFilterConfig, Threshold, WireSizes};
use proptest::prelude::*;

fn system(seed: u64) -> (Hierarchy, SystemData) {
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: 60,
            items: 2_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    (Hierarchy::balanced(60, 3), data)
}

fn config(sizes: WireSizes) -> NetFilterConfig {
    NetFilterConfig::builder()
        .filter_size(40)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .sizes(sizes)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The answer is wire-size independent; the costs scale exactly with
    /// the configured widths.
    #[test]
    fn costs_scale_answer_does_not(
        sa in 1u64..=8,
        sg in 1u64..=8,
        si in 1u64..=8,
        seed in 0u64..100,
    ) {
        let (h, data) = system(seed);
        let base = NetFilter::new(config(WireSizes::default())).run(&h, &data);
        let sized = NetFilter::new(config(WireSizes { sa, sg, si })).run(&h, &data);

        prop_assert_eq!(base.frequent_items(), sized.frequent_items());

        // Filtering: sa per slot — exact ratio sa/4.
        let f_base: u64 = base.cost().filtering.iter().sum();
        let f_sized: u64 = sized.cost().filtering.iter().sum();
        prop_assert_eq!(f_sized * 4, f_base * sa);

        // Dissemination: sg per heavy id — heavy sets are identical
        // (hashing ignores wire sizes), so the ratio is exact too.
        let d_base: u64 = base.cost().dissemination.iter().sum();
        let d_sized: u64 = sized.cost().dissemination.iter().sum();
        prop_assert_eq!(d_sized * 4, d_base * sg);

        // Aggregation: (sa + si) per pair.
        let a_base: u64 = base.cost().aggregation.iter().sum();
        let a_sized: u64 = sized.cost().aggregation.iter().sum();
        prop_assert_eq!(a_sized * 8, a_base * (sa + si));
    }
}

#[test]
fn des_protocol_honours_wire_sizes() {
    let (h, data) = system(7);
    let sizes = WireSizes {
        sa: 2,
        sg: 1,
        si: 8,
    };
    let cfg = config(sizes);
    let instant = NetFilter::new(cfg.clone()).run(&h, &data);
    let mut w = NetFilterProtocol::build_world(&cfg, &h, &data, SimConfig::default().with_seed(3));
    w.start();
    w.run_to_quiescence();
    assert_eq!(
        w.peer(PeerId::new(0)).result().expect("finished"),
        instant.frequent_items()
    );
    assert_eq!(
        w.metrics().class_bytes(MsgClass::FILTERING),
        instant.cost().filtering.iter().sum::<u64>()
    );
    assert_eq!(
        w.metrics().class_bytes(MsgClass::DISSEMINATION),
        instant.cost().dissemination.iter().sum::<u64>()
    );
    assert_eq!(
        w.metrics().class_bytes(MsgClass::AGGREGATION),
        instant.cost().aggregation.iter().sum::<u64>()
    );
}

#[test]
fn eight_byte_identifiers_cover_the_full_item_space() {
    // With si = 8 the codec can carry any u64 item id; verify a workload
    // with huge composite ids (keyword pairs) flows through the full stack.
    use ifi_workload::scenarios;
    let data = scenarios::cooccurring_pairs(30, 50_000, 40, 3, 1.0, 9);
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.01);
    let h = Hierarchy::balanced(30, 3);
    let cfg = NetFilterConfig::builder()
        .filter_size(60)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .sizes(WireSizes {
            sa: 4,
            sg: 4,
            si: 8,
        })
        .build();
    let run = NetFilter::new(cfg).run(&h, &data);
    assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
}
