//! DES ≡ real transport for the continuous standing-query engine: the
//! same sans-io `ContinuousProtocol` cores, driven by the simulator and
//! by the threaded channel runtime, must certify the same epoch fences
//! with the same answers *and* the same per-class byte totals.
//!
//! Wall-clock scheduling legitimately permutes when each peer's fence
//! timer fires relative to its neighbours', so a child's epoch-`e` delta
//! may reach a parent that has not closed fence `e` itself (buffered) or
//! arrive after later fences were locally closed (merged out of order).
//! The telescoping-delta invariant makes the certified answers immune to
//! all of that, and byte totals match because every delta and answer row
//! is priced at send from the same deterministic window state.

use std::time::Duration as StdDuration;

use ifi_hierarchy::Hierarchy;
use ifi_sim::{PeerId, SimConfig};
use ifi_transport::run_channel;
use ifi_workload::{SystemData, WorkloadParams};
use netfilter::continuous::{
    schedule_from_data, ContinuousConfig, ContinuousProtocol, EpochAnswer, QueryRegistry,
    StandingQuery,
};
use netfilter::phases;

/// Peers in the equivalence scenario (the ISSUE's N = 500 bar).
const PEERS: usize = 500;
/// Epoch fences per run.
const EPOCHS: usize = 5;
/// Window size in buckets.
const WINDOW: usize = 3;
/// Thresholds of the two standing queries.
const THRESHOLDS: [u64; 2] = [60, 120];

const MAX_WAIT: StdDuration = StdDuration::from_secs(120);

/// Epoch length under the threaded transport: long enough that a fence
/// is never starved by thread scheduling jitter, short enough that five
/// fences finish well inside the wait budget. (Sim microseconds equal
/// wall microseconds under the threaded driver.)
const WALL_EPOCH: ifi_sim::Duration = ifi_sim::Duration::from_millis(40);

struct Scenario {
    cfg: ContinuousConfig,
    hierarchy: Hierarchy,
    registry: QueryRegistry,
    schedules: Vec<Vec<Vec<(ifi_workload::ItemId, u64)>>>,
}

fn scenario(seed: u64) -> Scenario {
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: PEERS,
            items: 600,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let schedules = schedule_from_data(&data, EPOCHS);
    let hierarchy = Hierarchy::balanced(PEERS, 4);
    let mut registry = QueryRegistry::new();
    for (i, &t) in THRESHOLDS.iter().enumerate() {
        registry.register(StandingQuery {
            id: i as u32,
            threshold: t,
            subscriber: PeerId::new(PEERS - 1),
        });
    }
    Scenario {
        cfg: ContinuousConfig::new(WINDOW, EPOCHS).with_epoch(WALL_EPOCH),
        hierarchy,
        registry,
        schedules,
    }
}

/// Runs the scenario under the DES and returns the root's certified
/// history plus the per-class byte totals.
fn des_run(s: &Scenario) -> (Vec<EpochAnswer>, u64, u64) {
    let mut w = ContinuousProtocol::build_world(
        &s.cfg,
        &s.hierarchy,
        &s.registry,
        &s.schedules,
        SimConfig::default().with_seed(0xC0DE),
    );
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    let history = w.peer(s.hierarchy.root()).history().to_vec();
    let report = w.metrics_report();
    (
        history,
        report.phase_bytes(phases::DELTA),
        report.phase_bytes(phases::STANDING),
    )
}

#[test]
fn channel_transport_matches_des_at_n500() {
    let s = scenario(20080617);
    let (des_history, des_delta, des_standing) = des_run(&s);
    assert_eq!(des_history.len(), EPOCHS, "DES must certify every fence");
    assert!(
        des_history.iter().any(|a| !a.answers[0].items.is_empty()),
        "scenario must surface frequent items"
    );

    let cores = ContinuousProtocol::peers(&s.cfg, &s.hierarchy, &s.registry, &s.schedules, None);
    let outcome = run_channel(cores, EPOCHS, MAX_WAIT);

    // Every delivery is the root's, one per certified fence, in epoch
    // order (a single root thread emits them monotonically).
    assert_eq!(
        outcome.outputs.len(),
        EPOCHS,
        "root must certify every fence within the wait budget"
    );
    let root = s.hierarchy.root();
    for (peer, _) in &outcome.outputs {
        assert_eq!(*peer, root, "only the root delivers epoch answers");
    }
    let transport_history: Vec<EpochAnswer> =
        outcome.outputs.iter().map(|(_, a)| a.clone()).collect();
    assert_eq!(
        transport_history, des_history,
        "certified epoch answers diverge across drivers"
    );

    // The final cores are inspectable like `World::peer`.
    assert_eq!(
        outcome.nodes[root.index()].history(),
        des_history.as_slice()
    );

    // Same metering methodology: the shared delta stream and the
    // per-query answer rows must price identically under both drivers.
    assert_eq!(
        outcome.report.phase_bytes(phases::DELTA),
        des_delta,
        "delta-class bytes diverge across drivers"
    );
    assert_eq!(
        outcome.report.phase_bytes(phases::STANDING),
        des_standing,
        "standing-class bytes diverge across drivers"
    );
    assert!(
        outcome.report.warnings.is_empty(),
        "transport run warned: {:?}",
        outcome.report.warnings
    );
}
