//! Exactness under message loss: with the ack/retransmit envelope enabled,
//! every netFilter engine must produce the exact IFI answer across a grid
//! of drop rates with duplication and reordering (delay spikes) switched
//! on, the phase costs must stay loss-independent (identical to the
//! instant engine's `CostBreakdown`), and every byte of reliability
//! overhead must be metered in its own `retransmit` class.

use ifi_hierarchy::Hierarchy;
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{DetRng, Duration, FaultPlan, MsgClass, PeerId, RelConfig, SimConfig, SimTime};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::phases;
use netfilter::protocol::NetFilterProtocol;
use netfilter::resilient::{ResilientConfig, ResilientProtocol};
use netfilter::{NetFilter, NetFilterConfig, Threshold};

/// Drop rates the exactness contract is asserted over.
const DROP_GRID: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

fn workload(peers: usize, items: u64, seed: u64) -> SystemData {
    SystemData::generate(
        &WorkloadParams {
            peers,
            items,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    )
}

fn config(g: u32, f: u32) -> NetFilterConfig {
    NetFilterConfig::builder()
        .filter_size(g)
        .filters(f)
        .threshold(Threshold::Ratio(0.01))
        .build()
}

/// Loss, duplication and reordering all at once.
fn chaos(drop: f64) -> FaultPlan {
    FaultPlan::none()
        .with_drop(drop)
        .with_duplication(0.05)
        .with_delay_spikes(0.1, Duration::from_millis(400))
}

#[test]
fn one_shot_protocol_is_exact_across_the_loss_grid() {
    let data = workload(40, 1_200, 17);
    let h = Hierarchy::balanced(40, 3);
    let cfg = config(30, 2);
    let instant = NetFilter::new(cfg.clone()).run(&h, &data);

    for (i, &drop) in DROP_GRID.iter().enumerate() {
        let sim = SimConfig::default()
            .with_seed(100 + i as u64)
            .with_faults(chaos(drop));
        let mut w =
            NetFilterProtocol::build_world_reliable(&cfg, &h, &data, sim, RelConfig::default());
        w.enable_metrics_sink();
        w.start();
        w.run_to_quiescence();

        // The answer is exact: same IFI set, same values.
        assert_eq!(
            w.peer(PeerId::new(0))
                .result()
                .unwrap_or_else(|| panic!("drop={drop}: root never finished")),
            instant.frequent_items(),
            "drop={drop}: wrong answer"
        );

        // Phase costs are loss-independent (originals are charged once in
        // their phase class no matter how often they are retransmitted),
        // and the *only* other traffic is the declared retransmit
        // overhead: the report reconciles byte-for-byte against the
        // instant engine's CostBreakdown.
        let report = w.sink().report();
        instant
            .cost()
            .reconcile_with_overhead(&report, &[phases::RETRANSMIT])
            .unwrap_or_else(|e| panic!("drop={drop}: {e}"));

        // The overhead is visible as its own phase and class, and they
        // agree with each other.
        assert_eq!(
            report.phase_bytes(phases::RETRANSMIT),
            w.metrics().class_bytes(MsgClass::RETRANSMIT),
            "drop={drop}: phase/class accounting disagree"
        );
        assert!(
            report.phase_bytes(phases::RETRANSMIT) > 0,
            "drop={drop}: acks alone guarantee retransmit traffic"
        );
        if drop > 0.0 {
            assert!(
                w.metrics().dropped_messages() > 0,
                "drop={drop}: the fault plan never fired"
            );
        }
    }
}

#[test]
fn scheduled_drops_are_deterministic_and_recovered() {
    // Surgically drop three specific frames (kernel send sequence numbers,
    // not a probability): the run must still be exact, the kernel must
    // count exactly those drops, and replaying the same seed must
    // reproduce the execution byte-for-byte.
    let data = workload(25, 600, 23);
    let h = Hierarchy::balanced(25, 3);
    let cfg = config(20, 2);
    let instant = NetFilter::new(cfg.clone()).run(&h, &data);

    let run = || {
        let faults = FaultPlan::none().with_scheduled_drops([0, 2, 5]);
        let sim = SimConfig::default().with_seed(33).with_faults(faults);
        let mut w =
            NetFilterProtocol::build_world_reliable(&cfg, &h, &data, sim, RelConfig::default());
        w.start();
        w.run_to_quiescence();
        let result = w
            .peer(PeerId::new(0))
            .result()
            .expect("root finishes")
            .to_vec();
        let m = w.metrics();
        (
            result,
            m.total_bytes(),
            m.class_bytes(MsgClass::RETRANSMIT),
            m.dropped_messages(),
        )
    };
    let (result_a, bytes_a, retrans_a, dropped_a) = run();
    let (result_b, bytes_b, retrans_b, dropped_b) = run();

    assert_eq!(result_a, instant.frequent_items());
    assert_eq!(dropped_a, 3, "exactly the scheduled frames are dropped");
    assert!(retrans_a > 0, "the dropped frames were retransmitted");
    assert_eq!(
        (result_a, bytes_a, retrans_a, dropped_a),
        (result_b, bytes_b, retrans_b, dropped_b),
        "same seed must replay identically"
    );
}

#[test]
fn zero_fault_reliable_run_is_byte_identical_to_plain() {
    // When no fault fires, the envelope must add nothing beyond its acks:
    // phase classes match a plain (non-reliable) run of the same seed
    // exactly, and the grand total differs only by the metered acks.
    let data = workload(30, 800, 29);
    let h = Hierarchy::balanced(30, 3);
    let cfg = config(20, 2);

    let mut plain =
        NetFilterProtocol::build_world(&cfg, &h, &data, SimConfig::default().with_seed(7));
    plain.start();
    plain.run_to_quiescence();

    let mut reliable = NetFilterProtocol::build_world_reliable(
        &cfg,
        &h,
        &data,
        SimConfig::default().with_seed(7),
        RelConfig::default(),
    );
    reliable.start();
    reliable.run_to_quiescence();

    assert_eq!(
        plain.peer(PeerId::new(0)).result(),
        reliable.peer(PeerId::new(0)).result()
    );
    for class in [
        MsgClass::FILTERING,
        MsgClass::DISSEMINATION,
        MsgClass::AGGREGATION,
    ] {
        assert_eq!(
            plain.metrics().class_bytes(class),
            reliable.metrics().class_bytes(class),
            "phase class {class:?} must be untouched by the envelope"
        );
    }
    let acks = reliable.metrics().class_bytes(MsgClass::RETRANSMIT);
    assert_eq!(
        reliable.metrics().total_bytes(),
        plain.metrics().total_bytes() + acks,
        "with no faults the only overhead is the acks"
    );
    assert_eq!(reliable.metrics().dropped_messages(), 0);
}

#[test]
fn resilient_epochs_stay_exact_across_the_loss_grid() {
    // The epoch-based engine under the same chaos grid: every *completed*
    // epoch must be exact, and at least two epochs must complete at every
    // drop rate (without the envelope, percent-level loss stalls nearly
    // every epoch — see `lossy_network_completion_certifies_exactness`).
    // The failure-detector timeout is widened so random heartbeat/Attach
    // loss cannot masquerade as churn (12 consecutive losses at p=0.2
    // ~ 4e-9 per window): with no real churn, repair never runs, so any
    // inexact epoch would be a reliability bug.
    let n = 50;
    let mut rng = DetRng::new(19);
    let topo = Topology::random_regular(n, 5, &mut rng);
    let h = Hierarchy::bfs(&topo, PeerId::new(0));
    let data = workload(n, 1_500, 19);
    let cfg = config(40, 3);
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.01);

    let rc = ResilientConfig {
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(500),
            timeout: Duration::from_secs(6),
            bytes: 8,
        },
        query_period: Duration::from_secs(8),
        epoch_timeout: Duration::from_secs(24),
        ..ResilientConfig::default()
    };

    for (i, &drop) in DROP_GRID.iter().enumerate() {
        let sim = SimConfig::default()
            .with_seed(200 + i as u64)
            .with_faults(chaos(drop));
        let mut w = ResilientProtocol::build_world_reliable(
            &cfg,
            rc,
            &topo,
            &h,
            &data,
            sim,
            RelConfig::default(),
        );
        w.start();
        w.run_until(SimTime::from_micros(40_000_000));

        let root = w.peer(PeerId::new(0));
        let done = root.completed_epochs();
        assert!(
            done.len() >= 2,
            "drop={drop}: only {} epochs completed",
            done.len()
        );
        for er in done {
            assert_eq!(
                er.answer,
                truth.frequent_items(t),
                "drop={drop}: epoch {} inexact",
                er.epoch
            );
            assert!(
                er.is_complete(),
                "drop={drop}: epoch {} must be certified complete on a churn-free network",
                er.epoch
            );
        }
        if drop > 0.0 {
            assert!(
                w.metrics().dropped_messages() > 0,
                "drop={drop}: no faults fired"
            );
            assert!(
                w.metrics().class_bytes(MsgClass::RETRANSMIT) > 0,
                "drop={drop}: lost frames must be retransmitted"
            );
        }
    }
}
