//! Property tests for the extension modules: sliding-window IFI and exact
//! top-k, checked against brute-force oracles on random inputs.

use ifi_hierarchy::Hierarchy;
use ifi_sim::PeerId;
use ifi_workload::{GroundTruth, ItemId, SystemData, WorkloadParams};
use netfilter::sketch::SpaceSaving;
use netfilter::windowed::{SlidingWindow, WindowedMonitor};
use netfilter::{topk, NetFilterConfig, Threshold};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A sliding window's totals equal a brute-force sum over the last
    /// `buckets` slices, for any record/advance interleaving.
    #[test]
    fn window_equals_bruteforce(
        buckets in 1usize..6,
        ops in prop::collection::vec(
            // (advance?, item, value)
            (prop::bool::weighted(0.2), 0u64..10, 1u64..50),
            1..120,
        ),
    ) {
        let mut w = SlidingWindow::new(buckets);
        // Oracle: a list of slices, the live window being the last
        // `buckets` of them.
        let mut slices: Vec<std::collections::BTreeMap<u64, u64>> =
            vec![Default::default()];
        for (advance, item, value) in ops {
            if advance {
                w.advance();
                slices.push(Default::default());
            } else {
                w.record(ItemId(item), value);
                *slices.last_mut().unwrap().entry(item).or_insert(0) += value;
            }
        }
        let live = &slices[slices.len().saturating_sub(buckets)..];
        for item in 0..10u64 {
            let expect: u64 = live.iter().filter_map(|s| s.get(&item)).sum();
            prop_assert_eq!(w.value(ItemId(item)), expect, "item {}", item);
        }
        // local_items agrees with per-item values and omits zeros.
        for (id, v) in w.local_items() {
            prop_assert!(v > 0);
            prop_assert_eq!(w.value(id), v);
        }
    }

    /// Exact top-k equals the oracle prefix for random workloads and k.
    #[test]
    fn top_k_equals_oracle(
        peers in 2usize..30,
        items in 10u64..300,
        theta in 0.0f64..2.0,
        k in 1usize..40,
        seed in 0u64..300,
    ) {
        let data = SystemData::generate(
            &WorkloadParams { peers, items, instances_per_item: 8, theta },
            seed,
        );
        let h = Hierarchy::balanced(peers, 3);
        let truth = GroundTruth::compute(&data);
        let run = topk::top_k(&h, &data, k, &topk::TopKConfig::lossless(k));
        let expect: Vec<(ItemId, u64)> = truth.globals().iter().copied().take(k).collect();
        prop_assert!(run.certified, "lossless runs always certify");
        prop_assert_eq!(run.items, expect);
    }

    /// A windowed query over any recording pattern equals a one-shot IFI
    /// over the materialized windows.
    #[test]
    fn windowed_query_equals_materialized_ifi(
        records in prop::collection::vec((0usize..20, 0u64..50, 1u64..20), 1..200),
        advances in 0usize..3,
        seed in 0u64..100,
    ) {
        let _ = seed;
        let config = NetFilterConfig::builder()
            .filter_size(10)
            .filters(2)
            .threshold(Threshold::Absolute(25))
            .build();
        let mut m = WindowedMonitor::new(20, 3, 100, config);
        for (i, &(p, item, v)) in records.iter().enumerate() {
            m.record(PeerId::new(p), ItemId(item), v);
            if advances > 0 && i % (records.len() / advances + 1) == 0 {
                m.advance();
            }
        }
        let h = Hierarchy::balanced(20, 3);
        let run = m.query(&h);

        let data = SystemData::from_local_sets(
            (0..20).map(|p| m.window(PeerId::new(p)).local_items()).collect(),
            100,
        );
        let truth = GroundTruth::compute(&data);
        prop_assert_eq!(run.frequent_items(), &truth.frequent_items(25)[..]);
    }

    /// Space-Saving merge is exactly commutative: the deficit-form merge is
    /// a pointwise sum plus a deterministic prune, so operand order cannot
    /// matter at all.
    #[test]
    fn sketch_merge_is_commutative(
        capacity in 1usize..12,
        xs in prop::collection::vec((0u64..40, 1u64..100), 0..60),
        ys in prop::collection::vec((0u64..40, 1u64..100), 0..60),
    ) {
        let to_items = |v: &[(u64, u64)]| -> Vec<(ItemId, u64)> {
            v.iter().map(|&(i, w)| (ItemId(i), w)).collect()
        };
        let a = SpaceSaving::from_items(capacity, &to_items(&xs));
        let b = SpaceSaving::from_items(capacity, &to_items(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Space-Saving merge is associative up to ε: either association keeps
    /// the full weight, stays below the true count, and the two estimates
    /// never diverge by more than the summary's own error bound.
    #[test]
    fn sketch_merge_is_associative_up_to_epsilon(
        capacity in 1usize..12,
        xs in prop::collection::vec((0u64..40, 1u64..100), 0..50),
        ys in prop::collection::vec((0u64..40, 1u64..100), 0..50),
        zs in prop::collection::vec((0u64..40, 1u64..100), 0..50),
    ) {
        let to_items = |v: &[(u64, u64)]| -> Vec<(ItemId, u64)> {
            v.iter().map(|&(i, w)| (ItemId(i), w)).collect()
        };
        let mut exact: std::collections::BTreeMap<u64, u64> = Default::default();
        for &(i, w) in xs.iter().chain(&ys).chain(&zs) {
            *exact.entry(i).or_insert(0) += w;
        }
        let a = SpaceSaving::from_items(capacity, &to_items(&xs));
        let b = SpaceSaving::from_items(capacity, &to_items(&ys));
        let c = SpaceSaving::from_items(capacity, &to_items(&zs));
        // left = (a ⊕ b) ⊕ c, right = a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = b.clone();
        right.merge(&c);
        let mut ra = a.clone();
        ra.merge(&right);
        let right = ra;
        prop_assert_eq!(left.weight(), right.weight());
        let bound = left.error_bound();
        for item in 0..40u64 {
            let t = exact.get(&item).copied().unwrap_or(0);
            for s in [&left, &right] {
                let e = s.estimate(ItemId(item));
                prop_assert!(e <= t, "estimates never overshoot the truth");
                prop_assert!(t - e <= bound, "deficit beyond ε·V");
            }
            let (el, er) = (left.estimate(ItemId(item)), right.estimate(ItemId(item)));
            prop_assert!(el.abs_diff(er) <= bound, "associations diverge past ε·V");
        }
    }

    /// A certified top-k answer never drops a true top-k item, at any
    /// prune capacity: certification is only claimed when the bounds prove
    /// the candidate slate complete.
    #[test]
    fn certified_topk_never_drops_a_true_item(
        peers in 2usize..25,
        items in 5u64..120,
        theta in 0.0f64..2.0,
        k in 1usize..12,
        extra_cap in 0usize..40,
        seed in 0u64..300,
    ) {
        let data = SystemData::generate(
            &WorkloadParams { peers, items, instances_per_item: 6, theta },
            seed,
        );
        let h = Hierarchy::balanced(peers, 3);
        let truth = GroundTruth::compute(&data);
        let cfg = topk::TopKConfig::new(k).with_prune_cap(k + extra_cap);
        let run = topk::top_k(&h, &data, k, &cfg);
        // Returned values are always exact, certified or not.
        for &(item, v) in &run.items {
            prop_assert_eq!(v, truth.value_of(item));
        }
        if run.certified {
            let expect: Vec<(ItemId, u64)> =
                truth.globals().iter().copied().take(k).collect();
            prop_assert_eq!(run.items, expect, "certified answer missed a true top-k item");
        }
    }
}

#[test]
fn search_driven_popularity_feeds_ifi() {
    // Table I row 4, mechanistically: searches generate the workload, IFI
    // finds the de-facto content servers exactly.
    use ifi_overlay::Topology;
    use ifi_sim::DetRng;
    use ifi_workload::scenarios;
    use netfilter::NetFilter;

    let topo = Topology::random_regular(100, 4, &mut DetRng::new(21));
    let data = scenarios::popular_peers_by_search(&topo, 500, 10, 60, 1.3, 22);
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.02);
    let h = Hierarchy::balanced(100, 3);
    let run = NetFilter::new(
        NetFilterConfig::builder()
            .filter_size(30)
            .filters(3)
            .threshold(Threshold::Ratio(0.02))
            .build(),
    )
    .run(&h, &data);
    assert_eq!(run.frequent_items(), &truth.frequent_items(t)[..]);
    // The flagged "popular peers" are actual peer ids.
    for &(peer_item, _) in run.frequent_items() {
        assert!(peer_item.0 < 100);
    }
}
