//! Workspace-level drive of the `ifi-simcheck` harness: the case registry
//! covers every protocol family, a pinned historical bug is rediscovered
//! end to end (explore → shrink → replay) at a seed the CI smoke never
//! uses, and a clean case survives a reduced exploration budget. The full
//! six-case pass at the default seed lives in the bench smoke
//! (`experiments simcheck-smoke`); these tests keep the harness honest
//! from outside the crate at different seeds.

use ifi_simcheck::{all_cases, find_case, ExploreConfig};

#[test]
fn registry_covers_three_clean_and_three_pinned_bug_cases() {
    let cases = all_cases(1);
    let clean: Vec<&str> = cases
        .iter()
        .filter(|c| c.expect_violation.is_none())
        .map(|c| c.name)
        .collect();
    let bugs: Vec<(&str, &str)> = cases
        .iter()
        .filter_map(|c| c.expect_violation.map(|o| (c.name, o)))
        .collect();
    assert_eq!(
        clean,
        ["netfilter-clean", "resilient-clean", "maintain-clean"]
    );
    assert_eq!(
        bugs,
        [
            ("bug-churn-race", "panic"),
            ("bug-count-to-infinity", "tree"),
            ("bug-double-merge", "no-inflation"),
        ]
    );
}

/// The heartbeat churn-race panic is found, shrunk, and the shrunk
/// perturbation replays to the same oracle — at a seed unrelated to the
/// one the smoke pins, so rediscovery is not a fluke of one rng stream.
#[test]
fn churn_race_bug_is_rediscovered_shrunk_and_replayable() {
    let case = find_case("bug-churn-race", 7).expect("registered case");
    let report = case.explore();
    let found = report
        .violation
        .expect("the pinned bug must fire within the case budget");
    assert_eq!(found.shrunk_violation.oracle, "panic");
    assert!(found.shrunk.len() <= found.perturbation.len());
    let replayed = case
        .replay(&found.shrunk)
        .expect("the shrunk repro must still violate");
    assert_eq!(replayed.oracle, "panic");
    assert!(
        replayed.detail.contains("is not tracked"),
        "unexpected panic text: {}",
        replayed.detail
    );
}

/// A clean case stays clean under a reduced budget at a fresh seed, and
/// the strategy genuinely diversifies schedules rather than replaying the
/// default order with a different label.
#[test]
fn clean_maintain_exploration_holds_and_diversifies_schedules() {
    let case = find_case("maintain-clean", 11).expect("registered case");
    let cfg = ExploreConfig {
        trials: 12,
        ..case.config.clone()
    };
    let report = case.explore_with(&cfg);
    if let Some(f) = &report.violation {
        panic!(
            "trial {} violated {}: {}",
            f.trial, f.violation.oracle, f.violation.detail
        );
    }
    assert_eq!(report.trials_run, 12);
    assert!(
        report.distinct_schedules >= 10,
        "only {} distinct schedules in 12 trials",
        report.distinct_schedules
    );
}
