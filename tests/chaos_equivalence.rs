//! Chaos ≡ faults: the same failure scenario, expressed as a transport
//! [`ChaosPlan`] and as the corresponding DES `FaultPlan`, must leave the
//! protocol with the same exact answer, the same `Complete` census
//! certificate, and the same loss-independent byte classes.
//!
//! This is the robustness capstone. The DES already proves the protocol
//! exact under declarative faults (`loss_exactness`, `churn_exactness`);
//! the threaded transport already proves DES ≡ transport on clean runs
//! (`transport_equivalence`). This suite closes the square: a seeded
//! chaos plan — ≥10% frame drop, a mid-epoch peer-thread crash with a
//! delayed restart, and a transient partition — is translated onto the
//! DES via [`ChaosPlan::fault_plan`] / [`ChaosPlan::crash_schedule`] and
//! run under both drivers. Because every phase send is charged at
//! submission (charge-at-send) and recovery traffic is metered apart
//! (`RETRANSMIT` for the reliability envelope, `FAILOVER` for the census
//! certificates), the paper-phase and census byte totals are identical
//! across all three runs even though wall-clock interleavings, retransmit
//! counts, and fault draws differ freely.

use std::time::Duration as StdDuration;

use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, MetricsReport, MsgClass, PeerId, RelConfig, SimConfig};
use ifi_transport::{run_channel_chaos, run_tcp_chaos, ChaosPlan, RunOutcome};
use ifi_workload::{ItemId, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::resilient::Certificate;
use netfilter::wire::NfWire;
use netfilter::{NetFilterConfig, Threshold};

/// The paper's three metered phases.
const PAPER_PHASES: [&str; 3] = ["filtering", "dissemination", "aggregation"];

const MAX_WAIT: StdDuration = StdDuration::from_secs(120);

struct Scenario {
    cfg: NetFilterConfig,
    hierarchy: Hierarchy,
    data: SystemData,
}

fn scenario(peers: usize, items: u64, seed: u64) -> Scenario {
    let params = WorkloadParams {
        peers,
        items,
        instances_per_item: 10,
        theta: 1.0,
    };
    let data = SystemData::generate(&params, seed);
    let degree = 3.min(peers - 1).max(1);
    let topo = Topology::random_regular(peers, degree, &mut DetRng::new(seed));
    let hierarchy = Hierarchy::bfs(&topo, PeerId::new(seed as usize % peers));
    let cfg = NetFilterConfig::builder()
        .filter_size(24)
        .filters(2)
        .threshold(Threshold::Ratio(0.01))
        .build();
    Scenario {
        cfg,
        hierarchy,
        data,
    }
}

/// The ISSUE's reference chaos scenario: ≥10% frame drop, one mid-epoch
/// peer-thread crash with a delayed restart, one transient partition.
/// `crash` and the partition group avoid the root so the result delivery
/// itself is exercised under recovery rather than torn down with it.
fn chaos_plan(s: &Scenario) -> ChaosPlan {
    let root = s.hierarchy.root();
    let crash = (0..s.data.peer_count())
        .map(PeerId::new)
        .find(|&p| p != root)
        .expect("scenario has a non-root peer");
    let islander = (0..s.data.peer_count())
        .map(PeerId::new)
        .find(|&p| p != root && p != crash)
        .expect("scenario has a third peer");
    ChaosPlan::new(0xC4A05)
        .with_drop(0.10)
        .with_crash(
            crash,
            StdDuration::from_millis(150),
            StdDuration::from_millis(400),
        )
        .with_partition(
            StdDuration::from_millis(50),
            StdDuration::from_millis(650),
            [islander],
        )
}

/// Runs the scenario under the DES with the chaos plan translated onto
/// the simulator's fault vocabulary; returns the exact answer and report.
fn des_run_under_faults(s: &Scenario, plan: &ChaosPlan) -> (Vec<(ItemId, u64)>, MetricsReport) {
    let sim = SimConfig::default()
        .with_seed(0xDE5)
        .with_faults(plan.fault_plan());
    let mut w = NetFilterProtocol::build_world_certified(
        &s.cfg,
        &s.hierarchy,
        &s.data,
        sim,
        RelConfig::default(),
    );
    for (kill, revive, peer) in plan.crash_schedule() {
        w.schedule_kill(kill, peer);
        w.schedule_revive(revive, peer);
    }
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    let root = s.hierarchy.root();
    assert_eq!(
        w.peer(root).certificate(),
        Some(Certificate::Complete),
        "DES run under faults must certify complete coverage"
    );
    let answer = w
        .peer(root)
        .result()
        .expect("DES root must finish under faults")
        .to_vec();
    (answer, w.metrics_report())
}

/// The same certified peer population `build_world_certified` constructs,
/// as bare cores for a transport driver.
fn certified_peers(s: &Scenario) -> Vec<NetFilterProtocol> {
    let threshold = s.cfg.threshold.resolve(s.data.total_value());
    let roster = NetFilterProtocol::roster(&s.hierarchy);
    (0..s.data.peer_count())
        .map(|i| {
            let p = PeerId::new(i);
            NetFilterProtocol::new(
                &s.cfg,
                &s.hierarchy,
                p,
                s.data.local_items(p).to_vec(),
                threshold,
            )
            .with_reliability(RelConfig::default())
            .with_census(roster)
        })
        .collect()
}

/// Asserts a chaos-transport run reconciles with the faulted DES run:
/// exact answer, `Complete` certificate, identical paper-phase and census
/// (`FAILOVER`) bytes, recovery traffic metered under `RETRANSMIT`.
fn assert_chaos_reconciles(
    s: &Scenario,
    des_answer: &[(ItemId, u64)],
    des_report: &MetricsReport,
    outcome: &RunOutcome<NetFilterProtocol>,
) {
    assert_eq!(
        outcome.outputs.len(),
        1,
        "exactly the root must deliver a result"
    );
    let (peer, delivery) = &outcome.outputs[0];
    assert_eq!(*peer, s.hierarchy.root());
    assert_eq!(
        delivery.answer, des_answer,
        "answers diverge between chaos transport and faulted DES"
    );
    assert_eq!(
        delivery.certificate,
        Some(Certificate::Complete),
        "chaos run must certify complete coverage"
    );
    for phase in PAPER_PHASES {
        assert_eq!(
            outcome.report.phase_bytes(phase),
            des_report.phase_bytes(phase),
            "phase `{phase}` bytes diverge under chaos"
        );
    }
    // Census certificates are charged once per report, loss-independent:
    // the FAILOVER class reconciles exactly. Recovery traffic lands in
    // RETRANSMIT in both drivers; its volume is timing-dependent, so only
    // its presence and classification are asserted.
    assert_eq!(
        outcome.report.class_bytes(MsgClass::FAILOVER),
        des_report.class_bytes(MsgClass::FAILOVER),
        "census bytes diverge under chaos"
    );
    // (Acks are metered under RETRANSMIT too, so >0 holds on any reliable
    // run; together with `chaos_drops > 0` and the exact answer it pins
    // that recovery both happened and was classified out of the phases.)
    assert!(
        outcome.report.class_bytes(MsgClass::RETRANSMIT) > 0,
        "recovery traffic must land in the RETRANSMIT class"
    );
    assert!(
        des_report.class_bytes(MsgClass::RETRANSMIT) > 0,
        "the faulted DES must meter recovery traffic too"
    );
    assert!(
        outcome.chaos_drops > 0,
        "the chaos layer must actually have dropped frames"
    );
    assert_eq!(outcome.restarts, 1, "the scheduled crash must restart once");
}

#[test]
fn channel_chaos_matches_faulted_des() {
    let s = scenario(16, 120, 11);
    let plan = chaos_plan(&s);
    let (des_answer, des_report) = des_run_under_faults(&s, &plan);
    assert!(!des_answer.is_empty(), "scenario must have frequent items");

    let outcome = run_channel_chaos(certified_peers(&s), 1, MAX_WAIT, plan);
    assert_chaos_reconciles(&s, &des_answer, &des_report, &outcome);
}

#[test]
fn tcp_chaos_matches_faulted_des() {
    let s = scenario(16, 120, 11);
    let plan = chaos_plan(&s);
    let (des_answer, des_report) = des_run_under_faults(&s, &plan);
    assert!(!des_answer.is_empty(), "scenario must have frequent items");

    let outcome = run_tcp_chaos(
        certified_peers(&s),
        NfWire::new(s.cfg.sizes),
        1,
        MAX_WAIT,
        plan,
    )
    .expect("tcp fabric setup failed");
    assert_chaos_reconciles(&s, &des_answer, &des_report, &outcome);
}

#[test]
fn inert_chaos_is_byte_identical_to_the_plain_transport() {
    // `run_channel` is `run_channel_chaos` with an inert plan; this pins
    // the claim that an inert plan perturbs nothing (no stray warnings,
    // no chaos drops, no restarts).
    let s = scenario(12, 80, 7);
    let outcome = run_channel_chaos(certified_peers(&s), 1, MAX_WAIT, ChaosPlan::none());
    assert_eq!(outcome.outputs.len(), 1);
    assert_eq!(
        outcome.outputs[0].1.certificate,
        Some(Certificate::Complete)
    );
    assert_eq!(outcome.chaos_drops, 0);
    assert_eq!(outcome.restarts, 0);
    assert_eq!(outcome.shed_frames, 0);
    assert!(
        outcome.report.warnings.is_empty(),
        "inert chaos run warned: {:?}",
        outcome.report.warnings
    );
}
