//! Quickstart: identify frequent items in a simulated P2P system.
//!
//! Builds an unstructured overlay of 1000 peers, forms the BFS hierarchy
//! the paper describes, generates the Table III workload, and runs
//! netFilter side by side with the naive baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, PeerId};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::{naive, NetFilter, NetFilterConfig, Threshold, WireSizes};

fn main() {
    let seed = 2008;

    // 1. An unstructured P2P overlay (random regular graph, degree 4) and
    //    the BFS aggregation hierarchy over it (§III-A.1).
    let mut rng = DetRng::new(seed);
    let topology = Topology::random_regular(1000, 4, &mut rng);
    let hierarchy = Hierarchy::bfs(&topology, PeerId::new(0));
    println!(
        "overlay: {} peers, {} edges; hierarchy height {}",
        topology.peer_count(),
        topology.edge_count(),
        hierarchy.height()
    );

    // 2. The paper's workload: n = 10^5 items, Zipf(θ = 1) global values,
    //    ~10 instances per item scattered over the peers.
    let params = WorkloadParams {
        peers: 1000,
        items: 100_000,
        instances_per_item: 10,
        theta: 1.0,
    };
    let data = SystemData::generate_paper(&params, seed);
    println!(
        "workload: n = {}, total mass v = {}, o ≈ {:.0} items/peer",
        params.items,
        data.total_value(),
        data.avg_distinct_per_peer()
    );

    // 3. Run netFilter at threshold ratio φ = 0.01 with the paper's tuned
    //    setting (g = 100, f = 3).
    let config = NetFilterConfig::builder()
        .filter_size(100)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    let run = NetFilter::new(config).run(&hierarchy, &data);

    println!("\nfrequent items (global value ≥ {}):", run.threshold());
    for &(item, value) in run.frequent_items().iter().take(10) {
        println!("  {item:>12}  {value:>10}");
    }
    if run.frequent_items().len() > 10 {
        println!("  … and {} more", run.frequent_items().len() - 10);
    }

    // 4. The answer is exact — verify against centrally computed truth.
    let truth = GroundTruth::compute(&data);
    let (fp, fn_, verr) = truth.verify(run.threshold(), run.frequent_items());
    assert_eq!((fp, fn_, verr), (0, 0, 0), "netFilter must be exact");
    println!("\nverified: no false positives, no false negatives, exact values");

    // 5. Compare communication cost against the naive approach (§IV-B).
    let nv = naive::run(
        &hierarchy,
        &data,
        Threshold::Ratio(0.01),
        &WireSizes::default(),
    );
    let cost = run.cost();
    println!("\ncommunication cost (average bytes per peer):");
    println!("  netFilter total   {:>10.1}", cost.avg_total());
    println!("    filtering       {:>10.1}", cost.avg_filtering());
    println!("    dissemination   {:>10.1}", cost.avg_dissemination());
    println!("    aggregation     {:>10.1}", cost.avg_aggregation());
    println!("  naive             {:>10.1}", nv.avg_bytes_per_peer());
    println!(
        "  netFilter / naive = {:.1}%",
        100.0 * cost.avg_total() / nv.avg_bytes_per_peer()
    );
}
