//! Denial-of-service attack detection (Table I, row 6).
//!
//! Peers observe flows passing through them and record bytes per
//! destination address. A destination receiving an abnormally large total
//! flow across the network is a DoS victim (or a flash crowd). This is IFI
//! verbatim: item = destination address, local value = flow bytes observed
//! at the peer, threshold = alarm level.
//!
//! The paper stresses that this application needs the **precise** answer:
//! "false positives are not desirable in network attack detection" (§II) —
//! which is exactly what netFilter guarantees over approximate
//! frequent-item schemes.
//!
//! ```text
//! cargo run --release --example attack_detection
//! ```

use ifi_hierarchy::Hierarchy;
use ifi_sim::DetRng;
use ifi_workload::{scenarios, GroundTruth, ItemId, SystemData};
use netfilter::{NetFilter, NetFilterConfig, Threshold};

/// Plants a volumetric attack towards one destination on top of background
/// traffic: the attack flows arrive from many small flows observed all
/// over the network.
fn traffic_with_attack(seed: u64) -> (SystemData, ItemId) {
    // Background: 500 peers routing 20k flows to 50k destinations.
    let background = scenarios::flow_traffic(500, 50_000, 20_000, 3, 8_000, 1.0, seed);
    let victim = ItemId(42_424);
    let mut rng = DetRng::new(seed).derive(0xA77ACC);

    // Attack: 2000 extra flows of ~20 kB each towards the victim.
    let mut local: Vec<Vec<(ItemId, u64)>> = (0..500)
        .map(|i| background.local_items(ifi_sim::PeerId::new(i)).to_vec())
        .collect();
    for _ in 0..2_000 {
        let observer = rng.below(500) as usize;
        let size = rng.exponential(20_000.0).max(1.0) as u64;
        local[observer].push((victim, size));
    }
    (SystemData::from_local_sets(local, 50_000), victim)
}

fn main() {
    let (data, victim) = traffic_with_attack(7);
    let truth = GroundTruth::compute(&data);
    println!(
        "traffic: {} observing peers, {} distinct destinations, {} total bytes",
        data.peer_count(),
        data.distinct_items(),
        data.total_value()
    );

    // Alarm when one destination draws more than 0.2% of all observed
    // traffic.
    let hierarchy = Hierarchy::balanced(500, 3);
    let config = NetFilterConfig::builder()
        .filter_size(200)
        .filters(3)
        .threshold(Threshold::Ratio(0.002))
        .build();
    let run = NetFilter::new(config).run(&hierarchy, &data);

    println!(
        "\nalarms (destinations drawing ≥ {} bytes ≈ 0.2% of traffic):",
        run.threshold()
    );
    for &(dest, bytes) in run.frequent_items() {
        let marker = if dest == victim {
            "  ← planted attack"
        } else {
            ""
        };
        println!("  dest {:>8}: {:>12} bytes{marker}", dest.0, bytes);
    }

    // The victim must be flagged, with its exact byte count, and the alarm
    // list must match the oracle exactly — no spurious alarms.
    assert!(
        run.frequent_items().iter().any(|&(d, _)| d == victim),
        "the planted attack must be detected"
    );
    let (fp, fn_, verr) = truth.verify(run.threshold(), run.frequent_items());
    assert_eq!((fp, fn_, verr), (0, 0, 0));
    println!(
        "\nverified: alarm set is exact ({} alarms, zero false alarms)",
        run.frequent_items().len()
    );
    println!(
        "communication: {:.1} bytes/peer (vs shipping every flow record to a coordinator)",
        run.cost().avg_total()
    );
}
