//! Frequent-keyword identification for cache management (Table I, row 1),
//! with multi-request sharing (§III-A.1).
//!
//! Peers log the keywords of the queries they issue; a cache manager wants
//! the globally frequent keywords *with their precise counts* ("the precise
//! global values of the frequent items are required to facilitate cache
//! replacement", §II). Several peers ask concurrently with different
//! thresholds; the root serves all of them with ONE netFilter run at the
//! minimum threshold and splits the superset.
//!
//! ```text
//! cargo run --release --example keyword_cache
//! ```

use ifi_hierarchy::Hierarchy;
use ifi_sim::PeerId;
use ifi_workload::{scenarios, GroundTruth};
use netfilter::requests::RequestBroker;
use netfilter::{NetFilterConfig, Threshold};

fn main() {
    // 400 peers, a 30k-word vocabulary, 200 queries per peer of 3 Zipf-
    // popular keywords each.
    let data = scenarios::keyword_queries(400, 30_000, 200, 3, 1.1, 99);
    let truth = GroundTruth::compute(&data);
    println!(
        "query log: {} peers, {} distinct keywords, {} keyword occurrences",
        data.peer_count(),
        data.distinct_items(),
        data.total_value()
    );

    let hierarchy = Hierarchy::balanced(400, 3);
    let config = NetFilterConfig::builder()
        .filter_size(150)
        .filters(3)
        .build();

    // Three cache managers with different aggressiveness ask at once.
    let mut broker = RequestBroker::new();
    broker.submit(PeerId::new(17), Threshold::Ratio(0.02)); // small, hot cache
    broker.submit(PeerId::new(88), Threshold::Ratio(0.005)); // mid-size cache
    broker.submit(PeerId::new(311), Threshold::Ratio(0.001)); // large cache
    println!(
        "\nserving {} concurrent requests with one shared run …",
        broker.pending()
    );

    let (results, run) = broker.serve(&config, &hierarchy, &data);
    println!(
        "shared run executed at t = {} (the minimum of all requests); cost {:.1} B/peer",
        run.threshold(),
        run.cost().avg_total()
    );

    for r in &results {
        println!(
            "\ncache plan for peer {} (keywords with count ≥ {}): {} keywords",
            r.requester,
            r.threshold,
            r.items.len()
        );
        for &(kw, count) in r.items.iter().take(5) {
            println!("  keyword {:>6}: {:>7} queries", kw.0, count);
        }
        if r.items.len() > 5 {
            println!("  …");
        }
        // Every requester gets the exact answer for its own threshold.
        let expect = truth.frequent_items(r.threshold);
        assert_eq!(r.items, expect, "request by {} must be exact", r.requester);
    }
    println!("\nverified: all three result sets exact, served by a single hierarchy pass");
}
