//! Trending songs over a sliding window — footnote 1 of the paper:
//! *"A music marketing firm may want to find out which MP3 songs have been
//! downloaded more than 10,000 times in the past week."*
//!
//! Each peer logs its local downloads into a 7-slice (daily) sliding
//! window; the firm queries at the end of every day. A song that goes
//! viral enters the answer, stays while its week-total clears the bar, and
//! ages out exactly seven days after the hype dies — with exact counts at
//! every step, because each query is an ordinary netFilter run over the
//! materialized windows.
//!
//! ```text
//! cargo run --release --example trending
//! ```

use ifi_hierarchy::Hierarchy;
use ifi_sim::{DetRng, PeerId};
use ifi_workload::{ItemId, ZipfSampler};
use netfilter::windowed::WindowedMonitor;
use netfilter::{topk, NetFilterConfig, Threshold};

const PEERS: usize = 400;
const SONGS: u64 = 50_000;
const DOWNLOADS_PER_PEER_PER_DAY: usize = 60;
const WINDOW_DAYS: usize = 7;
const TREND_BAR: u64 = 10_000;

fn main() {
    let hierarchy = Hierarchy::balanced(PEERS, 3);
    let config = NetFilterConfig::builder()
        .filter_size(150)
        .filters(3)
        .threshold(Threshold::Absolute(TREND_BAR))
        .build();
    let mut monitor = WindowedMonitor::new(PEERS, WINDOW_DAYS, SONGS, config);

    let catalogue = ZipfSampler::new(SONGS as usize, 0.9);
    let mut rng = DetRng::new(2008).derive(0x3A17);
    let viral_song = ItemId(777);

    println!("day  viral-downloads(day)  trending songs (week total ≥ {TREND_BAR})");
    for day in 1..=14u32 {
        // Background listening.
        for p in 0..PEERS {
            for _ in 0..DOWNLOADS_PER_PEER_PER_DAY {
                let song = ItemId(catalogue.sample(&mut rng) as u64);
                monitor.record(PeerId::new(p), song, 1);
            }
        }
        // A song goes viral on days 3-5: a burst well above the bar.
        let viral_today = if (3..=5).contains(&day) { 6_000u64 } else { 0 };
        if viral_today > 0 {
            for _ in 0..viral_today {
                let p = rng.below(PEERS as u64) as usize;
                monitor.record(PeerId::new(p), viral_song, 1);
            }
        }

        let run = monitor.query(&hierarchy);
        let viral_now = run
            .frequent_items()
            .iter()
            .find(|&&(s, _)| s == viral_song)
            .map(|&(_, v)| v);
        println!(
            "{day:>3}  {viral_today:>20}  {:>3} songs{}",
            run.frequent_items().len(),
            match viral_now {
                Some(v) => format!("  ← viral song at {v} this week"),
                None => String::new(),
            }
        );
        monitor.advance();
    }

    // The viral burst (18k over days 3-5) trends from day 4 (first week
    // total over the bar) through day 10 (the last window still holding
    // two burst days); by day 11 only one burst day remains in the window
    // (6k < 10k) and the song drops off the chart — all visible above.
    println!("\n(the viral song ages out of the 7-day window after day 10, as printed above)");

    // Bonus: exact top-5 chart of the final window via the top-k engine.
    let data = ifi_workload::SystemData::from_local_sets(
        (0..PEERS)
            .map(|p| monitor.window(PeerId::new(p)).local_items())
            .collect(),
        SONGS,
    );
    let chart = topk::top_k(&hierarchy, &data, 5, &topk::TopKConfig::lossless(5));
    println!(
        "\nfinal-week top-5 chart ({} candidates verified, certified: {}):",
        chart.candidates, chart.certified
    );
    for (rank, &(song, downloads)) in chart.items.iter().enumerate() {
        println!(
            "  #{:<2} song {:>6}: {:>7} downloads",
            rank + 1,
            song.0,
            downloads
        );
    }
}
