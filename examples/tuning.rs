//! Setting netFilter optimally in practice (§IV-E).
//!
//! A cheap sampling pass over a few random hierarchy branches estimates
//! `v̄`, `v̄_light`, `n̂`, and `r̂`; Eq. 3 and Eq. 6 turn those into the
//! recommended `(g, f)`. This example compares the estimates against the
//! (normally unknowable) ground truth and the tuned setting's cost against
//! a brute-force parameter sweep.
//!
//! ```text
//! cargo run --release --example tuning
//! ```

use ifi_agg::sampling::SamplingConfig;
use ifi_hierarchy::Hierarchy;
use ifi_sim::DetRng;
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::{analysis, tuning, NetFilter, NetFilterConfig, Threshold, WireSizes};

fn cost_of(g: u32, f: u32, h: &Hierarchy, data: &SystemData) -> f64 {
    let cfg = NetFilterConfig::builder()
        .filter_size(g)
        .filters(f)
        .threshold(Threshold::Ratio(0.01))
        .build();
    NetFilter::new(cfg).run(h, data).cost().avg_total()
}

fn main() {
    let params = WorkloadParams {
        peers: 1000,
        items: 100_000,
        instances_per_item: 10,
        theta: 1.0,
    };
    let data = SystemData::generate_paper(&params, 17);
    let hierarchy = Hierarchy::balanced(1000, 3);
    let truth = GroundTruth::compute(&data);
    let t = truth.threshold_for_ratio(0.01);

    // --- Sampling pass (a few branches, as the paper prescribes). ---
    let tuned = tuning::tune(
        &hierarchy,
        &data,
        Threshold::Ratio(0.01),
        &SamplingConfig {
            branches: 8,
            items_per_peer: 200,
        },
        &WireSizes::default(),
        &mut DetRng::new(23),
    );
    let s = &tuned.stats;
    println!(
        "sampling pass: {} peers on 8 branches, {} sampled items, {} bytes",
        s.sampled_peers, s.sampled_items, s.bytes
    );

    println!("\nestimates vs ground truth:");
    println!(
        "  v̄_light : {:>10.2}  (true {:.2})",
        s.v_light_bar,
        truth.avg_light_value(t)
    );
    println!(
        "  v̄       : {:>10.2}  (true {:.2})",
        s.v_bar_universe(data.total_value()),
        truth.avg_value()
    );
    println!("  n̂       : {:>10}  (true {})", s.n_hat, data.universe());
    println!(
        "  r̂       : {:>10}  (true {})",
        s.r_hat,
        truth.heavy_count(t)
    );

    // --- Derived setting vs the oracle. ---
    let phi = t as f64 / truth.total_value() as f64;
    let g_oracle = analysis::optimal_g(
        truth.avg_light_value(t),
        phi,
        truth.avg_value(),
        tuning::G_SLACK,
    );
    let f_oracle = analysis::optimal_f(
        &WireSizes::default(),
        data.universe(),
        truth.heavy_count(t) as u64,
        g_oracle,
    );
    println!("\nrecommended setting:");
    println!(
        "  sampled  : g = {:>4}, f = {}",
        tuned.filter_size, tuned.filters
    );
    println!("  oracle   : g = {:>4}, f = {}", g_oracle, f_oracle);

    let tuned_cost = cost_of(tuned.filter_size, tuned.filters, &hierarchy, &data);
    let oracle_cost = cost_of(g_oracle, f_oracle, &hierarchy, &data);

    // Brute force sweep for reference.
    let mut best = (0u32, 0u32, f64::INFINITY);
    for g in [25, 50, 75, 100, 150, 200, 300] {
        for f in 1..=6 {
            let c = cost_of(g, f, &hierarchy, &data);
            if c < best.2 {
                best = (g, f, c);
            }
        }
    }
    println!("\ncommunication cost (avg bytes/peer):");
    println!("  sampled tuning : {tuned_cost:>9.1}");
    println!("  oracle Eq. 3/6 : {oracle_cost:>9.1}");
    println!(
        "  sweep best     : {:>9.1}  (g = {}, f = {})",
        best.2, best.0, best.1
    );
    assert!(
        tuned_cost <= 3.0 * best.2,
        "sampled tuning strayed too far from optimal"
    );
    println!(
        "\nsampling-based tuning lands within {:.2}x of the sweep optimum",
        tuned_cost / best.2
    );
}
