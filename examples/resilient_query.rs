//! Continuous frequent-item monitoring under churn, with the resilient
//! protocol (the repo's extension of the paper's §VI future-work
//! direction).
//!
//! The root re-issues the IFI query every few seconds as *epochs* over a
//! self-repairing hierarchy; peers crash mid-stream, the affected epochs
//! stall and are superseded, and once repair converges the answers are
//! exact again — all in one message-level simulation.
//!
//! ```text
//! cargo run --release --example resilient_query
//! ```

use ifi_hierarchy::Hierarchy;
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{DetRng, Duration, PeerId, SimConfig, SimTime};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::resilient::{ResilientConfig, ResilientProtocol};
use netfilter::{NetFilterConfig, Threshold};

fn main() {
    let n = 150;
    let mut rng = DetRng::new(42);
    let topology = Topology::random_regular(n, 5, &mut rng);
    let hierarchy = Hierarchy::bfs(&topology, PeerId::new(0));
    let data = SystemData::generate_paper(
        &WorkloadParams {
            peers: n,
            items: 10_000,
            instances_per_item: 10,
            theta: 1.0,
        },
        42,
    );

    let config = NetFilterConfig::builder()
        .filter_size(80)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    let rc = ResilientConfig {
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(500),
            timeout: Duration::from_millis(1600),
            bytes: 8,
        },
        query_period: Duration::from_secs(8),
        epoch_timeout: Duration::from_secs(24),
        ..ResilientConfig::default()
    };
    let mut w = ResilientProtocol::build_world(
        &config,
        rc,
        &topology,
        &hierarchy,
        &data,
        SimConfig::default().with_seed(7),
    );
    w.start();

    // Two staggered crashes while queries are flowing.
    let victims: Vec<PeerId> = hierarchy.internal_nodes().into_iter().take(2).collect();
    for (k, &v) in victims.iter().enumerate() {
        let at = SimTime::from_micros(11_000_000 + 9_000_000 * k as u64);
        println!(
            "scheduling crash of {v} (subtree of {}) at {at}",
            hierarchy.subtree_size(v)
        );
        w.schedule_kill(at, v);
    }

    w.run_until(SimTime::from_micros(120_000_000));

    let root = w.peer(PeerId::new(0));
    println!("\ncompleted epochs at the root:");
    for er in root.completed_epochs() {
        println!(
            "  epoch {:>2}: {} frequent items, top = {:?}, certificate = {:?}",
            er.epoch,
            er.answer.len(),
            er.answer.first(),
            er.certificate
        );
    }

    // Steady state: the last epoch is exact over the survivors' data.
    let surviving = SystemData::from_local_sets(
        (0..n)
            .map(|i| {
                let p = PeerId::new(i);
                if victims.contains(&p) {
                    Vec::new()
                } else {
                    data.local_items(p).to_vec()
                }
            })
            .collect(),
        data.universe(),
    );
    let truth = GroundTruth::compute(&surviving);
    let t = config.threshold.resolve(data.total_value());
    let (last_epoch, last) = root.last_result().expect("epochs completed");
    assert_eq!(
        last,
        &truth.frequent_items(t)[..],
        "steady-state epoch must be exact over survivors"
    );
    println!(
        "\nepoch {last_epoch} verified exact over the {} surviving peers' data \
         ({} frequent items at t = {t})",
        n - victims.len(),
        last.len()
    );
    println!(
        "total traffic: {:.1} bytes/peer across {} epochs (incl. heartbeats)",
        w.metrics().avg_bytes_per_peer(),
        root.completed_epochs().len()
    );
}
