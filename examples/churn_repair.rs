//! Hierarchy construction, heartbeat maintenance, and repair under churn
//! (§III-A), end to end on the discrete-event simulator.
//!
//! 1. Peers form an unstructured overlay and build the BFS hierarchy with
//!    real messages ([`BuildProtocol`]).
//! 2. The maintenance protocol heartbeats (with the DEPTH counter) while
//!    an internal peer crashes; orphaned subtrees set depth ∞ and
//!    re-attach to the first finite-depth neighbor they hear (§III-A.3).
//! 3. netFilter runs on the repaired hierarchy over the surviving peers
//!    and still returns the exact answer for the surviving data.
//!
//! ```text
//! cargo run --release --example churn_repair
//! ```

use ifi_hierarchy::{BuildProtocol, MaintainProtocol};
use ifi_overlay::{HeartbeatConfig, Topology};
use ifi_sim::{sansio_world, DetRng, Duration, MsgClass, PeerId, SimConfig, SimTime};
use ifi_workload::{GroundTruth, SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::{NetFilterConfig, Threshold};

fn main() {
    let n = 300;
    let mut rng = DetRng::new(5);
    let topology = Topology::random_regular(n, 4, &mut rng);
    let root = PeerId::new(0);

    // --- 1. Message-driven BFS construction. ---
    let peers: Vec<BuildProtocol> = topology
        .peers()
        .map(|p| BuildProtocol::new(topology.neighbors(p).to_vec(), p == root))
        .collect();
    let mut build = sansio_world(SimConfig::default().with_seed(1), peers);
    build.start();
    let t_built = build.run_to_quiescence();
    let hierarchy = BuildProtocol::snapshot(root, build.peers());
    hierarchy.check_invariants(Some(&topology));
    println!(
        "construction: {} peers joined in {t_built} using {} control bytes",
        hierarchy.member_count(),
        build.metrics().class_bytes(MsgClass::CONTROL),
    );

    // --- 2. Maintenance + a crash. ---
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(500),
        timeout: Duration::from_millis(1600),
        bytes: 8,
    };
    let peers: Vec<MaintainProtocol> = topology
        .peers()
        .map(|p| MaintainProtocol::new(&hierarchy, p, topology.neighbors(p).to_vec(), hb))
        .collect();
    let mut maintain = sansio_world(SimConfig::default().with_seed(2), peers);
    maintain.start();

    let victim = *hierarchy
        .internal_nodes()
        .iter()
        .max_by_key(|&&p| hierarchy.subtree_size(p))
        .expect("a 300-peer tree has internal nodes");
    let orphans = hierarchy.children(victim).len();
    println!(
        "\ncrashing internal peer {victim} (depth {:?}, {} direct children, subtree {})",
        hierarchy.depth(victim).unwrap(),
        orphans,
        hierarchy.subtree_size(victim)
    );
    maintain.schedule_kill(SimTime::from_micros(3_000_000), victim);
    maintain.run_until(SimTime::from_micros(40_000_000));

    let repaired = MaintainProtocol::snapshot(
        root,
        (0..n).map(|i| {
            (
                maintain.peer(PeerId::new(i)),
                maintain.is_up(PeerId::new(i)),
            )
        }),
    );
    repaired.check_invariants(None);
    let detaches: u32 = maintain.peers().map(|p| p.detach_count()).sum();
    println!(
        "repair: tree spans {}/{} alive peers again; {} detach events; {} heartbeat bytes",
        repaired.member_count(),
        n - 1,
        detaches,
        maintain.metrics().class_bytes(MsgClass::HEARTBEAT),
    );
    assert_eq!(repaired.member_count(), n - 1);

    // --- 3. netFilter on the repaired hierarchy. ---
    // The victim's local data left with it; the query now covers the
    // surviving peers' data.
    let params = WorkloadParams {
        peers: n,
        items: 20_000,
        instances_per_item: 10,
        theta: 1.0,
    };
    let full = SystemData::generate_paper(&params, 3);
    let surviving = SystemData::from_local_sets(
        (0..n)
            .map(|i| {
                if PeerId::new(i) == victim {
                    Vec::new()
                } else {
                    full.local_items(PeerId::new(i)).to_vec()
                }
            })
            .collect(),
        params.items,
    );
    let config = NetFilterConfig::builder()
        .filter_size(100)
        .filters(3)
        .threshold(Threshold::Ratio(0.01))
        .build();
    let mut query =
        NetFilterProtocol::build_world(&config, &repaired, &surviving, SimConfig::default());
    query.start();
    query.run_to_quiescence();
    let result = query.peer(root).result().expect("root finishes").to_vec();

    let truth = GroundTruth::compute(&surviving);
    let t = truth.threshold_for_ratio(0.01);
    assert_eq!(
        result,
        truth.frequent_items(t),
        "post-repair answer must be exact"
    );
    println!(
        "\nquery on repaired tree: {} frequent items at t = {t}, exact — {} bytes/peer",
        result.len(),
        (query.metrics().class_bytes(MsgClass::FILTERING)
            + query.metrics().class_bytes(MsgClass::DISSEMINATION)
            + query.metrics().class_bytes(MsgClass::AGGREGATION)) as f64
            / n as f64
    );
}
