//! Answer an IFI query over a *real* transport — and reconcile its bytes
//! against the simulator.
//!
//! The protocol cores are sans-io: `NetFilterProtocol` never touches a
//! socket, a clock, or a channel; it turns events into effects. The DES
//! drives those cores against simulated time, and `ifi-transport` drives
//! the *same* cores with one thread per peer over in-process channels or
//! TCP loopback sockets. This example runs one query three ways — DES,
//! channel fabric, TCP fabric — and shows that all three produce the same
//! frequent-item answer and the same per-phase byte totals, which is what
//! makes the simulator's cost curves statements about a real deployment.
//!
//! ```text
//! cargo run --release --example transport_smoke
//! ```

use std::time::Duration as StdDuration;

use ifi_hierarchy::Hierarchy;
use ifi_overlay::Topology;
use ifi_sim::{DetRng, MetricsReport, PeerId, SimConfig};
use ifi_transport::{run_channel, run_tcp};
use ifi_workload::{SystemData, WorkloadParams};
use netfilter::protocol::NetFilterProtocol;
use netfilter::wire::NfWire;
use netfilter::{NetFilterConfig, Threshold};

const PAPER_PHASES: [&str; 3] = ["filtering", "dissemination", "aggregation"];

fn main() {
    let seed = 2008;
    let peers = 60;

    // 1. Overlay, hierarchy, workload — the usual paper setup, sized for
    //    a demo.
    let mut rng = DetRng::new(seed);
    let topology = Topology::random_regular(peers, 4, &mut rng);
    let hierarchy = Hierarchy::bfs(&topology, PeerId::new(0));
    let data = SystemData::generate(
        &WorkloadParams {
            peers,
            items: 500,
            instances_per_item: 10,
            theta: 1.0,
        },
        seed,
    );
    let config = NetFilterConfig::builder()
        .filter_size(32)
        .filters(2)
        .threshold(Threshold::Ratio(0.01))
        .build();
    let threshold = config.threshold.resolve(data.total_value());

    // 2. Reference run under the DES.
    let mut w = NetFilterProtocol::build_world(
        &config,
        &hierarchy,
        &data,
        SimConfig::default().with_seed(seed),
    );
    w.enable_metrics_sink();
    w.start();
    w.run_to_quiescence();
    let des_answer = w
        .peer(hierarchy.root())
        .result()
        .expect("root must finish")
        .to_vec();
    let des_report = w.metrics_report();
    println!(
        "DES:     {:>2} frequent items (threshold {threshold}), {} B metered",
        des_answer.len(),
        des_report.total_bytes()
    );

    // 3. The same cores, driven by real threads. `build_world` and this
    //    closure construct the identical peer population.
    let cores = || -> Vec<NetFilterProtocol> {
        (0..peers)
            .map(|i| {
                let p = PeerId::new(i);
                NetFilterProtocol::new(
                    &config,
                    &hierarchy,
                    p,
                    data.local_items(p).to_vec(),
                    threshold,
                )
            })
            .collect()
    };
    let wait = StdDuration::from_secs(30);

    let channel = run_channel(cores(), 1, wait);
    println!(
        "channel: {:>2} frequent items, {} B metered, {} frames, {:.1} ms",
        channel.outputs[0].1.answer.len(),
        channel.report.total_bytes(),
        channel.frames_sent,
        channel.elapsed.as_secs_f64() * 1e3
    );

    let tcp = run_tcp(cores(), NfWire::new(config.sizes), 1, wait)
        .expect("tcp loopback fabric setup failed");
    println!(
        "tcp:     {:>2} frequent items, {} B metered, {} frames, {:.1} ms",
        tcp.outputs[0].1.answer.len(),
        tcp.report.total_bytes(),
        tcp.frames_sent,
        tcp.elapsed.as_secs_f64() * 1e3
    );

    // 4. Reconcile: same answer, same bytes in every paper phase.
    assert_eq!(channel.outputs[0].1.answer, des_answer);
    assert_eq!(tcp.outputs[0].1.answer, des_answer);
    println!("\nper-phase byte reconciliation (DES / channel / tcp):");
    let phase = |r: &MetricsReport, p: &str| r.phase_bytes(p);
    for p in PAPER_PHASES {
        let (d, c, t) = (
            phase(&des_report, p),
            phase(&channel.report, p),
            phase(&tcp.report, p),
        );
        assert_eq!(d, c, "channel bytes diverge in {p}");
        assert_eq!(d, t, "tcp bytes diverge in {p}");
        println!("  {p:<13} {d:>8} B = {c:>8} B = {t:>8} B");
    }
    println!("\nall three drivers agree — answer and bytes are driver-invariant");
}
